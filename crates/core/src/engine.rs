//! The optimised `log-k-decomp` engine — Algorithm 2 of the paper with all
//! Appendix C optimisations, optional hybridisation (Appendix D.2) and
//! parallel separator search (Appendix D.1).
//!
//! Optimisations implemented (names from Appendix C):
//!
//! * **Extension of the base case** — `|E'| = 0 ∧ |Sp| > 1` fails fast.
//! * **Searching for child nodes first** — the outer loop guesses λc and
//!   rejects unbalanced candidates before any parent is considered.
//! * **Root of the HD-fragment** — if `Conn ⊆ ⋃λc`, the candidate is the
//!   root of the current fragment and no parent is needed.
//! * **Allowed edges** — the recursion for the part *above* the child may
//!   not use edges from components below it (`A_up = A \ comp_down.E`).
//! * **Speeding up the parent search** — λp is drawn only from edges that
//!   intersect `⋃λc` (Theorem C.1 shows completeness is preserved).
//!
//! Beyond the paper's optimisations, this engine adds two memory
//! disciplines (mirroring the caching the paper's experiments rely on):
//!
//! * **Scratch workspaces.** Every recursion level owns a `LevelScratch`
//!   bundle of reusable bitset/`Vec` buffers, so the per-candidate hot
//!   path (`⋃λ` computation, `[U]`-component splitting, balance and
//!   cover checks) performs **zero heap allocations** in the steady
//!   state. Allocation only happens when a fragment is actually built.
//! * **Subproblem memoisation.** A sharded, lock-striped
//!   [`SubproblemCache`] records `Decomp` verdicts by resolved content:
//!   exhaustive failures as negative entries, found fragments as
//!   arena-independent positives re-interned on reuse — so the recursion
//!   neither re-explores a refuted subproblem nor re-derives a fragment
//!   any branch has already built. See [`crate::cache`] for the
//!   soundness argument. The `det-k-decomp` handoffs of the hybrid mode
//!   share one lock-striped memo table ([`detk::SharedMemo`]) the same
//!   way, instead of rebuilding a private table per handoff.
//!
//! Parallelisation follows Appendix D.1: the λc search space is partitioned
//! by lead edge and raced across the work-stealing pool by recursive
//! [`rayon::join`] splitting of the lead range — idle workers steal the
//! published halves, so the wildly uneven per-lead subtree costs balance
//! themselves — and sibling branches are pruned (early-cancelled at every
//! split and poll point) as soon as one candidate succeeds. Special
//! edges are arena-allocated with
//! stack discipline: a `Decomp` call restores the arena to its entry length
//! before returning, so a returned fragment only ever references special
//! edges of its own subproblem. Before branching, the arena is *sealed*
//! ([`SpecialArena::seal`]): the shared prefix moves behind an `Arc` and
//! each branch's "clone" is a reference-count bump instead of a deep copy.

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use decomp::{rebase_fragment, Control, Decomposition, Fragment, Interrupted};
use detk::{DetKDecomp, DetkScratch, MemoSnapshot, SharedMemo};
use hypergraph::subsets::{
    for_each_subset_driven_in, for_each_subset_in, for_each_subset_with_lead_in, subset_space_size,
    SubsetStep,
};
use hypergraph::{
    separate_into, Component, Edge, EdgeSet, Hypergraph, LevelStack, MaskMatrix, Scratch,
    Separation, SpecialArena, Subproblem, VertexSet,
};

use crate::cache::{CacheSnapshot, Probe, SubproblemCache};

/// Default byte budget for the subproblem cache (32 MiB),
/// mirroring the memory-limit discipline of the paper's experiments.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

/// Default entry cap for the `det-k-decomp` handoff memo table.
pub const DEFAULT_DETK_CACHE_CAP: usize = DetKDecomp::DEFAULT_CACHE_CAP;

/// Default node-count cap for *positive* cache inserts: a found fragment
/// is stored only when it has at most this many nodes. The cost of an
/// insert (portable-fragment conversion + key build) scales with the
/// fragment, while measured re-use concentrates on 1–2-node fragments
/// (every positive hit of `micro/pos_cache` survives this cap) — larger
/// fragments sit on the unique success path of a solve and are rarely
/// re-derived. Capping the stored size keeps the `micro/pos_cache` wins
/// intact and erases the insert tax on trivial instances
/// (`bounded40_k2`, previously ~40% over the uncached engine).
pub const DEFAULT_POS_CACHE_MAX_FRAG: usize = 2;

/// Byte budget of the node-local λp split memo (`⋃λp → comp_down`). An
/// entry's footprint scales with the instance (a vertex-set key plus a
/// component's subproblem/vertex bitsets), so the entry cap is derived
/// from the hypergraph's bitset sizes at engine construction
/// ([`LogKEngine::lp_memo_cap`]) — a flat entry count would balloon to
/// hundreds of megabytes per level on large instances. Candidates past
/// the cap simply run the BFS. Entries are freed when their node's
/// `ChildLoop` ends ([`LevelScratch::retire_lp_memo`]), so the live
/// aggregate is bounded by the *active* recursion path (O(log n) levels
/// by Theorem 4.2) per branch, not by every idle pooled scratch.
const LP_MEMO_BYTES: usize = 4 << 20;

/// Default component-count floor for sibling-children parallelism
/// ([`EngineConfig::child_split_min_components`]): with fewer than two
/// siblings there is nothing to overlap.
pub const DEFAULT_CHILD_SPLIT_MIN_COMPONENTS: usize = 2;

/// Default work floor for sibling-children parallelism
/// ([`EngineConfig::child_split_min_size`]): sibling subproblems summing
/// to fewer members than this are solved inline — near the leaves the
/// per-branch tax (arena fork, scratch checkout, scope job) exceeds the
/// work it would overlap.
pub const DEFAULT_CHILD_SPLIT_MIN_SIZE: usize = 8;

/// Complexity metric steering the hybrid handoff to `det-k-decomp`
/// (Appendix D.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum HybridMetric {
    /// `|E(H')|` (special edges counted like edges).
    EdgeCount,
    /// `|E(H')| · k / avg_{e ∈ E(H')} |e|`.
    WeightedCount,
}

impl HybridMetric {
    /// Evaluates the metric on a subproblem.
    pub fn evaluate(
        self,
        hg: &Hypergraph,
        arena: &SpecialArena,
        sub: &Subproblem,
        k: usize,
    ) -> f64 {
        let m = sub.size();
        match self {
            HybridMetric::EdgeCount => m as f64,
            HybridMetric::WeightedCount => {
                if m == 0 {
                    return 0.0;
                }
                let total: usize = sub.edges.iter().map(|e| hg.edge(e).len()).sum::<usize>()
                    + sub
                        .specials
                        .iter()
                        .map(|&s| arena.get(s).len())
                        .sum::<usize>();
                let avg = total as f64 / m as f64;
                if avg == 0.0 {
                    return 0.0;
                }
                m as f64 * k as f64 / avg
            }
        }
    }
}

/// Order in which λc/λp candidate edges are tried — the
/// balance-likelihood heuristic behind `edge_rank`. Both orders are
/// complete (they only permute the enumeration); the differential suite
/// pins identical verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CandidateOrder {
    /// Descending arity, ties by ascending id (the PR 2 default): larger
    /// edges are likelier to cover `Conn` and to balance-separate. On
    /// uniform-arity families this is a no-op permutation.
    #[default]
    Arity,
    /// Descending covered degree mass `Σ_{v ∈ e} deg(v)` (ties by
    /// descending arity, then id): prefers edges overlapping many other
    /// edges, which separate more of the subproblem per λ slot — a
    /// discriminating order even when every edge has the same arity.
    DegreeCoverage,
    /// Per-subproblem: descending `|e ∩ Conn|` (ties by the static
    /// arity rank). Edges covering more of the current connector are
    /// likelier to reach the root case (`Conn ⊆ ⋃λc`) early, at the
    /// cost of one `intersection_len` per candidate per `ChildLoop`.
    /// Degenerates to [`CandidateOrder::Arity`] when `Conn = ∅` (the
    /// top-level call).
    ConnCoverage,
}

/// When the λp pre-filter maintains its spill-touch masks incrementally
/// across the subset walk instead of re-walking the spill vertices per
/// (λc, λp) pair. See [`EngineConfig::lambda_p_incremental`] for the
/// trade-off; measured verdicts live in BENCHMARKS.md.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LpMode {
    /// Always re-walk per pair (the word-sized-instance winner).
    Never,
    /// Always maintain the masks incrementally.
    Always,
    /// Decide per instance: incremental on wide instances (vertex
    /// universe spanning more than [`LP_INCREMENTAL_AUTO_WORDS`] words,
    /// where per-pair sparse walks touch many words per vertex), per-pair
    /// below. This is the default.
    #[default]
    Auto,
}

/// [`LpMode::Auto`] threshold: instances whose vertex universe
/// spans more than this many 64-bit words run the incremental λp walk.
/// Set from the `micro/lp_prune` wide-vs-word-sized measurements
/// (BENCHMARKS.md): the per-pair sparse walk wins below (small `bad`
/// sets are nearly free), the word-parallel stack maintenance wins
/// above.
pub const LP_INCREMENTAL_AUTO_WORDS: usize = 4;

/// Hybridisation policy: below `threshold` the engine switches to
/// `det-k-decomp` on the subproblem.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Which complexity metric to use.
    pub metric: HybridMetric,
    /// Switch threshold `T`: handoff when `metric(H') < T`.
    pub threshold: f64,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Width bound `k ≥ 1`.
    pub k: usize,
    /// Recursion depths `< parallel_depth` race the λc search across the
    /// current rayon pool; `0` disables parallelism.
    pub parallel_depth: usize,
    /// Hybrid handoff policy, if any.
    pub hybrid: Option<HybridConfig>,
    /// Also try the parent/child pair search for a λc whose `⋃λc` covers
    /// `Conn` after its root-mode attempt failed. Algorithm 2 as printed
    /// does not (`continue ChildLoop`); differential testing against
    /// Algorithm 1 backs the printed behaviour, and this flag exists to
    /// keep that claim continuously tested.
    pub root_fallthrough: bool,
    /// Ablation: restrict the λp search space to edges intersecting `⋃λc`
    /// (the "speeding up the parent search" optimisation, Theorem C.1).
    /// On by default; turning it off only enlarges the search space.
    pub restrict_parent_search: bool,
    /// Ablation: shrink the allowed-edge set for the fragment above the
    /// child (`A_up = A \ comp_down.E`, the "allowed edges" optimisation).
    /// On by default.
    pub use_allowed_edges: bool,
    /// Byte budget for the subproblem cache (both verdicts); `0` disables
    /// memoisation entirely.
    pub cache_bytes: usize,
    /// Entry cap for the memo table of `det-k-decomp` handoffs
    /// (Appendix D.2); was previously hard-coded inside `detk`.
    pub detk_cache_cap: usize,
    /// Ablation: reject λp candidates with cheap coverage-bitmask tests
    /// before running the BFS separation (see `PreFilter` in the module
    /// source). On by
    /// default; turning it off only adds `separate_into` calls — the
    /// differential suite pins that verdicts are identical either way.
    pub lambda_p_prefilter: bool,
    /// Maintain the pre-filter's `edges_touching` spill masks
    /// *incrementally* across the λp subset walk (per-candidate masks
    /// precomputed once per λc, prefix union/touch stacks extended by one
    /// word-parallel union per push) instead of re-walking the spill
    /// vertices for every (λc, λp) pair. Identical rejections either way
    /// (differential-tested); this knob trades per-pair sparse walks for
    /// per-push full-width mask copies. Measured on the micro corpus
    /// (`micro/lp_prune` `grid4x4_k3_inc`, BENCHMARKS.md): the sparse
    /// walk wins on word-sized instances — small `bad` sets make the
    /// per-pair walk nearly free while the stack copies are pure
    /// overhead — while on wide-bitset instances with large spills the
    /// incremental walk wins. [`LpMode::Auto`] (the default)
    /// picks per instance size.
    pub lambda_p_incremental: LpMode,
    /// Largest fragment (node count) stored by a positive cache insert;
    /// `usize::MAX` stores every found fragment, `0` disables positive
    /// inserts. See [`DEFAULT_POS_CACHE_MAX_FRAG`].
    pub pos_cache_max_frag: usize,
    /// λc/λp candidate enumeration order (see [`CandidateOrder`]). The
    /// `lambda_c_rejected`/`lambda_p_rejected` counters measure what an
    /// order saves per workload family.
    pub candidate_order: CandidateOrder,
    /// Sibling-children parallelism grain, component-count floor: the
    /// `try_as_root`/`finish_pair` child loops probe their sibling
    /// subproblems concurrently only when there are at least this many of
    /// them (and `depth < parallel_depth`, and the pool has > 1 worker).
    /// `usize::MAX` disables below-children parallelism without touching
    /// the λc race.
    pub child_split_min_components: usize,
    /// Sibling-children parallelism grain, work floor: child loops whose
    /// sibling subproblems sum to fewer than this many members
    /// (`|E'| + |Sp|`) stay sequential — spawning scope jobs for trivial
    /// children costs more than solving them inline.
    pub child_split_min_size: usize,
}

impl EngineConfig {
    /// Sequential Algorithm 2 with width bound `k` and no hybridisation.
    pub fn sequential(k: usize) -> Self {
        EngineConfig {
            k,
            parallel_depth: 0,
            hybrid: None,
            root_fallthrough: false,
            restrict_parent_search: true,
            use_allowed_edges: true,
            cache_bytes: DEFAULT_CACHE_BYTES,
            detk_cache_cap: DEFAULT_DETK_CACHE_CAP,
            lambda_p_prefilter: true,
            lambda_p_incremental: LpMode::Auto,
            pos_cache_max_frag: DEFAULT_POS_CACHE_MAX_FRAG,
            candidate_order: CandidateOrder::Arity,
            child_split_min_components: DEFAULT_CHILD_SPLIT_MIN_COMPONENTS,
            child_split_min_size: DEFAULT_CHILD_SPLIT_MIN_SIZE,
        }
    }
}

/// Internal stop reasons: external interruption or sibling-branch pruning.
#[derive(Clone, Copy, Debug)]
enum Stop {
    External(Interrupted),
    Pruned,
}

/// Chain of prune flags for nested parallel races: a branch is dead if any
/// enclosing race has already found a winner.
#[derive(Clone, Copy)]
struct Prune<'a> {
    flag: &'a AtomicBool,
    parent: Option<&'a Prune<'a>>,
}

impl Prune<'_> {
    fn is_set(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.parent {
            Some(p) => p.is_set(),
            None => false,
        }
    }
}

/// Shared, read-only context of one parallel λc race (see
/// [`LogKEngine::child_loop_parallel`]): the sealed arena and subproblem
/// inputs every branch starts from, plus the race's cancellation flag and
/// first-winner result slot. Borrowed by every `join` branch of the
/// recursive lead split.
struct LeadRace<'a> {
    arena: &'a SpecialArena,
    sub: &'a Subproblem,
    conn: &'a VertexSet,
    allowed: &'a Arc<EdgeSet>,
    depth: usize,
    vsub: &'a VertexSet,
    cands: &'a [Edge],
    race: &'a Prune<'a>,
    won: &'a AtomicBool,
    slot: &'a std::sync::Mutex<Option<Result<Fragment, Stop>>>,
}

fn poll(ctrl: &Control, prune: Option<&Prune<'_>>) -> Result<(), Stop> {
    decomp::faults::hit_ctrl("logk/engine/poll", ctrl);
    ctrl.checkpoint().map_err(Stop::External)?;
    if prune.is_some_and(|p| p.is_set()) {
        return Err(Stop::Pruned);
    }
    Ok(())
}

/// Search statistics, collected during a solve.
///
/// `max_depth` is the deepest `Decomp` recursion reached — Theorem 4.1
/// bounds it by `O(log |E(H)|)`, and the test suite asserts that bound
/// empirically on scalable families.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Deepest recursion level of `Decomp`.
    pub max_depth: AtomicUsize,
    /// Total number of `Decomp` invocations.
    pub decomp_calls: AtomicU64,
    /// Scratch-workspace bundles allocated (one per recursion level per
    /// search context; constant in the steady state — the hot path itself
    /// allocates nothing).
    pub scratch_allocs: AtomicU64,
    /// Buffer growth events *inside* the scratch workspaces (a warm
    /// buffer needing to reallocate, e.g. after a larger hypergraph) —
    /// the fine-grained allocation meter behind the zero-steady-state
    /// claim. Collected from each scratch stack as it retires.
    pub scratch_grow_events: AtomicU64,
    /// Arena checkpoints handed to parallel branches. Each is an `Arc`
    /// bump over the sealed prefix, not a deep copy.
    pub arena_branch_clones: AtomicU64,
    /// Hybrid handoffs to `det-k-decomp`.
    pub detk_handoffs: AtomicU64,
    /// Largest memo-table size observed across `det-k-decomp` handoffs.
    pub detk_cache_peak: AtomicUsize,
    /// λc candidates enumerated but rejected (no progress, unbalanced, or
    /// no completable parent/child pair). The candidate-order heuristic
    /// exists to shrink this number.
    pub lambda_c_rejected: AtomicU64,
    /// λp candidates enumerated but rejected.
    pub lambda_p_rejected: AtomicU64,
    /// λp candidate sets discarded by the admissibility pre-filter
    /// before the BFS stage. An *upper bound* on separations avoided:
    /// whole parent loops skipped by the per-λc test count their full
    /// subset space, parts of which the cheap pre-BFS checks (new-edge,
    /// k-bound) would also have rejected — `separations` is the exact
    /// complementary count of BFS calls that did run.
    pub lambda_p_prefiltered: AtomicU64,
    /// `separate_into` calls performed (λc splits, λp splits and
    /// `[χc]`-splits of `comp_down`) — the denominator the pre-filter
    /// exists to shrink.
    pub separations: AtomicU64,
    /// Sibling-child loops (`try_as_root`/`finish_pair`) that fanned their
    /// components out on the pool instead of recursing sequentially.
    pub child_splits: AtomicU64,
    /// Sibling child recursions cancelled by a fail-fast join: a sibling's
    /// definitive rejection (or an interruption, or an outer race win)
    /// pruned them before they produced a verdict.
    pub child_cancels: AtomicU64,
    /// Child-branch fragments folded back under the parent arena at a
    /// fork/merge join (each is one `decomp::rebase_fragment` pass; under
    /// the engines' stack discipline the pass rewrites no ids — it is the
    /// soundness backstop of the fork/merge protocol).
    pub arena_rebases: AtomicU64,
}

impl EngineStats {
    /// Snapshot of the deepest recursion level.
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Snapshot of the call count.
    pub fn decomp_calls(&self) -> u64 {
        self.decomp_calls.load(Ordering::Relaxed)
    }

    /// Snapshot of scratch bundles allocated.
    pub fn scratch_allocs(&self) -> u64 {
        self.scratch_allocs.load(Ordering::Relaxed)
    }

    /// Snapshot of buffer growths inside scratch workspaces.
    pub fn scratch_grow_events(&self) -> u64 {
        self.scratch_grow_events.load(Ordering::Relaxed)
    }

    /// Snapshot of cheap arena checkpoints handed to branches.
    pub fn arena_branch_clones(&self) -> u64 {
        self.arena_branch_clones.load(Ordering::Relaxed)
    }

    /// Snapshot of `det-k-decomp` handoffs.
    pub fn detk_handoffs(&self) -> u64 {
        self.detk_handoffs.load(Ordering::Relaxed)
    }

    /// Largest `det-k-decomp` memo table observed.
    pub fn detk_cache_peak(&self) -> usize {
        self.detk_cache_peak.load(Ordering::Relaxed)
    }

    /// Snapshot of rejected λc candidates.
    pub fn lambda_c_rejected(&self) -> u64 {
        self.lambda_c_rejected.load(Ordering::Relaxed)
    }

    /// Snapshot of rejected λp candidates.
    pub fn lambda_p_rejected(&self) -> u64 {
        self.lambda_p_rejected.load(Ordering::Relaxed)
    }

    /// Snapshot of pre-filtered λp candidate sets (separations avoided).
    pub fn lambda_p_prefiltered(&self) -> u64 {
        self.lambda_p_prefiltered.load(Ordering::Relaxed)
    }

    /// Snapshot of `separate_into` calls performed.
    pub fn separations(&self) -> u64 {
        self.separations.load(Ordering::Relaxed)
    }

    /// Snapshot of sibling-child loops fanned out on the pool.
    pub fn child_splits(&self) -> u64 {
        self.child_splits.load(Ordering::Relaxed)
    }

    /// Snapshot of sibling child recursions cancelled by fail-fast joins.
    pub fn child_cancels(&self) -> u64 {
        self.child_cancels.load(Ordering::Relaxed)
    }

    /// Snapshot of child-branch fragments rebased under their parent arena.
    pub fn arena_rebases(&self) -> u64 {
        self.arena_rebases.load(Ordering::Relaxed)
    }
}

/// Per-level meters, shared by the split borrows of a [`LevelScratch`]
/// through interior mutability (one level is always single-threaded, so
/// `Cell` suffices). Folded into [`EngineStats`] when the level retires.
#[derive(Debug, Default)]
struct LevelMeters {
    /// Buffer growths in this level's non-BFS scratch: the vertex-set
    /// buffers (`⋃λ`, `χ`, connector) and the candidate/enumeration
    /// `Vec`s — every `_into` sink and `copy_from` threads its grow flag
    /// here, completing the regrowth meter's coverage.
    grow: Cell<u64>,
    /// λc candidates rejected at this level.
    rejected_c: Cell<u64>,
    /// λp candidates rejected at this level.
    rejected_p: Cell<u64>,
    /// λp candidate sets cut by the admissibility pre-filter at this
    /// level (BFS separations avoided).
    prefiltered_p: Cell<u64>,
    /// `separate_into` calls at this level.
    separations: Cell<u64>,
}

impl LevelMeters {
    #[inline]
    fn bump_grow(&self, grew: bool) {
        if grew {
            self.grow.set(self.grow.get() + 1);
        }
    }

    #[inline]
    fn reject_c(&self) {
        self.rejected_c.set(self.rejected_c.get() + 1);
    }

    #[inline]
    fn reject_p(&self) {
        self.rejected_p.set(self.rejected_p.get() + 1);
    }

    #[inline]
    fn prefilter_p(&self, n: u64) {
        self.prefiltered_p
            .set(self.prefiltered_p.get().saturating_add(n));
    }

    #[inline]
    fn bump_separation(&self) {
        self.separations.set(self.separations.get() + 1);
    }
}

/// Totals of the per-level meters, for delta reporting when a pooled
/// scratch bundle retires.
#[derive(Clone, Copy, Debug, Default)]
struct MeterTotals {
    grow: u64,
    rejected_c: u64,
    rejected_p: u64,
    prefiltered_p: u64,
    separations: u64,
}

impl std::ops::Add for MeterTotals {
    type Output = MeterTotals;
    fn add(self, rhs: MeterTotals) -> MeterTotals {
        MeterTotals {
            grow: self.grow + rhs.grow,
            rejected_c: self.rejected_c + rhs.rejected_c,
            rejected_p: self.rejected_p + rhs.rejected_p,
            prefiltered_p: self.prefiltered_p + rhs.prefiltered_p,
            separations: self.separations + rhs.separations,
        }
    }
}

impl std::ops::Sub for MeterTotals {
    type Output = MeterTotals;
    fn sub(self, rhs: MeterTotals) -> MeterTotals {
        MeterTotals {
            grow: self.grow - rhs.grow,
            rejected_c: self.rejected_c - rhs.rejected_c,
            rejected_p: self.rejected_p - rhs.rejected_p,
            prefiltered_p: self.prefiltered_p - rhs.prefiltered_p,
            separations: self.separations - rhs.separations,
        }
    }
}

/// Per-recursion-level scratch buffers. Everything the child/parent loops
/// touch per candidate lives here, so candidate evaluation never allocates
/// once a level is warm.
#[derive(Default)]
struct LevelScratch {
    /// Growth and rejection meters for this level.
    meters: LevelMeters,
    /// BFS buffers for `separate_into`.
    bfs: Scratch,
    /// `[⋃λc]`-components of the subproblem.
    seps_c: Separation,
    /// `[⋃λp]`-components of the subproblem.
    seps_p: Separation,
    /// `[χc]`-components of `comp_down`.
    seps_down: Separation,
    /// `V(H')` of the current subproblem.
    vsub: VertexSet,
    /// `⋃λc` of the current child candidate.
    union_c: VertexSet,
    /// `⋃λp` of the current parent candidate.
    union_p: VertexSet,
    /// `χc` in root mode (`⋃λc ∩ V(H')`).
    chi_root: VertexSet,
    /// `χc` in pair mode (`⋃λc ∩ V(comp_down)`).
    chi_pair: VertexSet,
    /// Connector handed to child recursions.
    conn_child: VertexSet,
    /// λc candidate edges.
    cands: Vec<Edge>,
    /// λp candidate edges.
    cands_p: Vec<Edge>,
    /// Enumeration buffer for the λc subset walk.
    lam_buf: Vec<Edge>,
    /// Enumeration buffer for the λp subset walk.
    lam_buf_p: Vec<Edge>,
    /// Coverage mask of ⋃λc: edges touching it (λp alphabet test).
    touch_uc: EdgeSet,
    /// `X = (Conn \ ⋃λc) ∩ V(H')` — connector vertices λp can never
    /// admit into `comp_down` (per λc).
    x_conn: VertexSet,
    /// `Conn ∩ ⋃λc ∩ V(H')` (per λc): the connector part whose
    /// `comp_down` membership hinges on ⋃λp coverage.
    conn_uc: VertexSet,
    /// Members of the subproblem touching `X` (per λc).
    touch_x: EdgeSet,
    /// Per-λp inadmissible-vertex set (⋃λp spill ∪ uncovered connector).
    bad: VertexSet,
    /// Second operand buffer for assembling `bad`.
    bad_tmp: VertexSet,
    /// Members touching `bad ∪ X` (per λp).
    touch_bad: EdgeSet,
    /// Edges touching the uncovered connector part (per λp): the only
    /// coverage walk left on the incremental pre-filter path.
    touch_uncov: EdgeSet,
    /// Per-candidate coverage masks for the incremental λp walk: row `i`
    /// holds the edges touching `(cands_p[i] \ ⋃λc) ∩ V(H')`, computed
    /// once per λc instead of re-walking the spill vertices for every
    /// (λc, λp) pair. SoA layout: all rows in one contiguous allocation,
    /// so the per-push mask folds stream adjacent cache lines instead of
    /// chasing per-candidate heap pointers.
    spill_touch: MaskMatrix<Edge>,
    /// Depth-indexed stack of `⋃` of the current λp prefix, maintained
    /// across the subset walk (one union per push, not `|λp|` per
    /// candidate).
    lp_union_stack: Vec<VertexSet>,
    /// Depth-indexed stack of the prefix's spill-touch mask
    /// (`⋃ spill_touch[i]` over the prefix members).
    lp_touch_stack: Vec<EdgeSet>,
    /// Node-local λp split memo: `⋃λp → comp_down` (`None` = no
    /// oversized component). The `[⋃λp]`-separation depends only on the
    /// subproblem and the separator vertex set — not on λc — and the
    /// same λp sets recur across every λc's parent loop of one `Decomp`
    /// node, so repeat candidates skip the BFS entirely. Cleared on
    /// `child_loop` entry (keys are only meaningful per subproblem).
    lp_memo: HashMap<VertexSet, Option<Component>>,
}

/// Stack of per-level scratch bundles, indexed by recursion depth — the
/// engine's instantiation of the generic [`LevelStack`] take/put
/// discipline. Levels are created lazily (base-case calls never allocate
/// one) and taken out while a level is active, so recursion borrows the
/// stack freely.
type ScratchStack = LevelStack<LevelScratch>;

/// Meter totals (growth + rejections) across a stack's parked levels.
fn stack_totals(stack: &ScratchStack) -> MeterTotals {
    stack
        .warm()
        .fold(MeterTotals::default(), |t, l| t + l.totals())
}

impl LevelScratch {
    /// This level's meter totals: the BFS scratch's growth counter plus
    /// the level's own (vertex-set / `Vec`) meters.
    fn totals(&self) -> MeterTotals {
        MeterTotals {
            grow: self.bfs.grow_events + self.meters.grow.get(),
            rejected_c: self.meters.rejected_c.get(),
            rejected_p: self.meters.rejected_p.get(),
            prefiltered_p: self.meters.prefiltered_p.get(),
            separations: self.meters.separations.get(),
        }
    }

    /// Drops the node's λp memo entries — keys and components are
    /// instance-sized, and this level (or its pooled branch) may sit
    /// idle arbitrarily long before the next `ChildLoop` re-clears it —
    /// along with any oversized bucket array a memo-heavy node left
    /// behind.
    fn retire_lp_memo(&mut self) {
        self.lp_memo.clear();
        if self.lp_memo.capacity() > 1 << 12 {
            self.lp_memo.shrink_to(1 << 12);
        }
    }
}

/// Warm scratch state for one parallel branch: the branch's level-0
/// bundle plus its stack for deeper levels. Pooled on the engine so that
/// racing many leads (and many parallel subproblems) reuses warm buffers
/// instead of re-allocating per branch.
#[derive(Default)]
struct BranchScratch {
    stack: ScratchStack,
    lvl: LevelScratch,
    /// Meter totals already folded into `EngineStats`, so re-pooled
    /// bundles only report the delta since their last retirement.
    reported: MeterTotals,
}

impl BranchScratch {
    fn totals(&self) -> MeterTotals {
        self.lvl.totals() + stack_totals(&self.stack)
    }
}

/// Mutable context threaded through one `ChildLoop` invocation: the
/// current level's buffers (minus the ones the caller is enumerating
/// over), nested to mirror the recursion — `ChildCtx` ⊃ [`PairCtx`]
/// (λp search) ⊃ [`DownCtx`] (recursing below/above a fixed pair).
struct ChildCtx<'a> {
    meters: &'a LevelMeters,
    seps_c: &'a mut Separation,
    union_c: &'a mut VertexSet,
    chi_root: &'a mut VertexSet,
    cands_p: &'a mut Vec<Edge>,
    lam_buf_p: &'a mut Vec<Edge>,
    touch_uc: &'a mut EdgeSet,
    x_conn: &'a mut VertexSet,
    conn_uc: &'a mut VertexSet,
    touch_x: &'a mut EdgeSet,
    spill_touch: &'a mut MaskMatrix<Edge>,
    lp_union_stack: &'a mut Vec<VertexSet>,
    lp_touch_stack: &'a mut Vec<EdgeSet>,
    pair: PairCtx<'a>,
}

/// Buffers for one `ParentLoop` iteration (`try_parent`).
struct PairCtx<'a> {
    seps_p: &'a mut Separation,
    union_p: &'a mut VertexSet,
    chi_pair: &'a mut VertexSet,
    bad: &'a mut VertexSet,
    bad_tmp: &'a mut VertexSet,
    touch_bad: &'a mut EdgeSet,
    touch_uncov: &'a mut EdgeSet,
    lp_memo: &'a mut HashMap<VertexSet, Option<Component>>,
    down: DownCtx<'a>,
}

/// Per-λc inputs of the λp admissibility pre-filter, borrowed by every
/// `try_parent` call of one `ParentLoop`. The underlying sets live in the
/// level's [`ChildCtx`] buffers; this view freezes them for the loop.
///
/// Soundness argument (why a hit can skip the BFS separation): a vertex
/// `v ∈ ⋃λp ∩ V(comp_down)` must lie in `χc ⊆ ⋃λc` (lines 31–32), and a
/// vertex `v ∈ Conn ∩ V(comp_down)` must lie in ⋃λp (lines 29–30) and
/// hence also in ⋃λc. So no vertex of
/// `bad = ((⋃λp \ ⋃λc) ∪ (Conn \ (⋃λc ∩ ⋃λp))) ∩ V(H')`
/// can appear in `V(comp_down)` — any member edge or special touching
/// `bad` is excluded from `comp_down`. If the members left over number at
/// most `|H'|/2`, no oversized component can exist (lines 24–27) and the
/// candidate is rejected exactly as the full separation would reject it.
struct PreFilter<'a> {
    /// `(Conn \ ⋃λc) ∩ V(H')` — λp-independent part of `bad`.
    x_conn: &'a VertexSet,
    /// `Conn ∩ ⋃λc ∩ V(H')` — per-λp, the part of it outside ⋃λp joins
    /// `bad`.
    conn_uc: &'a VertexSet,
    /// Members of the subproblem touching `x_conn`.
    touch_x: &'a EdgeSet,
}

/// Per-λp view of the incremental pre-filter walk handed to
/// `LogKEngine::try_parent`: the λc-level [`PreFilter`] sets plus the
/// subset walk's depth-indexed stack tops for the current λp prefix.
/// `union_p` equals `⋃λp` and `touch_spill` equals the edges touching
/// `(⋃λp \ ⋃λc) ∩ V(H')` — both maintained across the walk (one
/// word-parallel union per prefix push) instead of recomputed per
/// candidate pair.
struct LpIncremental<'a> {
    pf: &'a PreFilter<'a>,
    /// `⋃λp` of the visited candidate (stack top).
    union_p: &'a VertexSet,
    /// Edges touching the candidate's spill `(⋃λp \ ⋃λc) ∩ V(H')`
    /// (stack top).
    touch_spill: &'a EdgeSet,
}

/// Pre-filter mode of one `ParentLoop` iteration. Both filtering modes
/// reject exactly the same candidates (the differential suite pins it);
/// they differ in how the spill's coverage-touch mask is obtained — a
/// sparse per-pair vertex walk, or the incremental stacks of the driven
/// subset walk (see [`EngineConfig::lambda_p_incremental`] for the
/// measured trade-off).
enum LpFilter<'a> {
    /// Pre-filter disabled (`lambda_p_prefilter: false`).
    Off,
    /// Recompute `edges_touching(bad)` per candidate pair — the
    /// output-sensitive walk over `bad`'s set bits.
    PerPair(&'a PreFilter<'a>),
    /// Read the masks off the walk's depth-indexed stacks.
    Incremental(LpIncremental<'a>),
}

impl<'a> LpFilter<'a> {
    /// The λc-level pre-filter sets, when filtering is on.
    fn prefilter(&self) -> Option<&'a PreFilter<'a>> {
        match self {
            LpFilter::Off => None,
            LpFilter::PerPair(pf) => Some(pf),
            LpFilter::Incremental(i) => Some(i.pf),
        }
    }
}

/// Buffers that survive into the child recursions (`try_as_root`,
/// `finish_pair`): the BFS workspace, the `[χc]`-split of `comp_down`,
/// the per-child connector, and the scratch stack for deeper levels.
struct DownCtx<'a> {
    meters: &'a LevelMeters,
    bfs: &'a mut Scratch,
    seps_down: &'a mut Separation,
    conn_child: &'a mut VertexSet,
    stack: &'a mut ScratchStack,
}

/// Buffers the `ChildLoop` caller itself enumerates with while a
/// [`ChildCtx`] over the same level is live.
struct EnumBufs<'a> {
    vsub: &'a mut VertexSet,
    cands: &'a mut Vec<Edge>,
    lam_buf: &'a mut Vec<Edge>,
}

impl LevelScratch {
    /// Splits the level into the per-candidate context handed to
    /// `try_child` plus the enumeration buffers the caller keeps. The
    /// single place where scratch buffers are wired to their roles.
    fn split<'a>(&'a mut self, stack: &'a mut ScratchStack) -> (ChildCtx<'a>, EnumBufs<'a>) {
        let LevelScratch {
            meters,
            bfs,
            seps_c,
            seps_p,
            seps_down,
            vsub,
            union_c,
            union_p,
            chi_root,
            chi_pair,
            conn_child,
            cands,
            cands_p,
            lam_buf,
            lam_buf_p,
            touch_uc,
            x_conn,
            conn_uc,
            touch_x,
            bad,
            bad_tmp,
            touch_bad,
            touch_uncov,
            spill_touch,
            lp_union_stack,
            lp_touch_stack,
            lp_memo,
        } = self;
        let meters = &*meters;
        (
            ChildCtx {
                meters,
                seps_c,
                union_c,
                chi_root,
                cands_p,
                lam_buf_p,
                touch_uc,
                x_conn,
                conn_uc,
                touch_x,
                spill_touch,
                lp_union_stack,
                lp_touch_stack,
                pair: PairCtx {
                    seps_p,
                    union_p,
                    chi_pair,
                    bad,
                    bad_tmp,
                    touch_bad,
                    touch_uncov,
                    lp_memo,
                    down: DownCtx {
                        meters,
                        bfs,
                        seps_down,
                        conn_child,
                        stack,
                    },
                },
            },
            EnumBufs {
                vsub,
                cands,
                lam_buf,
            },
        )
    }
}

/// The Algorithm 2 engine. Immutable once built; all mutable search state
/// (the special-edge arena, the scratch stack) is threaded through the
/// recursion explicitly, and cross-branch state (the negative cache) is
/// internally synchronised.
pub struct LogKEngine<'h> {
    hg: &'h Hypergraph,
    ctrl: &'h Control,
    cfg: EngineConfig,
    stats: EngineStats,
    /// Candidate-enumeration rank per edge id: position in the
    /// (descending arity, ascending id) order — the balance-likelihood
    /// heuristic, since larger edges are likelier to cover `Conn` and to
    /// balance-separate. Computed once; candidate buffers are built by
    /// walking the (word-skipping) `allowed` bitset and rank-sorting the
    /// small result, so the per-candidate cost stays proportional to the
    /// allowed set, not to `|E(H)|`.
    edge_rank: Vec<u32>,
    /// Subproblem verdict cache. `Arc`-held so a long-running caller
    /// ([`Self::with_tables`]) can share one table across solves of the
    /// same instance at the same width.
    cache: Arc<SubproblemCache>,
    /// One `det-k-decomp` memo table shared by every hybrid handoff and
    /// rayon branch (previously each handoff rebuilt a private table);
    /// `Arc`-held for the same cross-solve sharing as `cache`.
    detk_memo: Arc<SharedMemo>,
    /// Warm scratch bundles recycled across parallel branches.
    branch_pool: std::sync::Mutex<Vec<BranchScratch>>,
    /// Warm `det-k-decomp` scratch stacks recycled across hybrid
    /// handoffs (and rayon branches), so handoffs stop paying cold
    /// buffer allocations per call.
    detk_pool: std::sync::Mutex<Vec<DetkScratch>>,
    /// Entry cap of each node-local λp split memo, derived from
    /// [`LP_MEMO_BYTES`] and this instance's per-entry bitset footprint.
    lp_memo_cap: usize,
    /// [`EngineConfig::lambda_p_incremental`] resolved against this
    /// instance's width ([`LpMode::Auto`] picks per vertex-universe
    /// size, so the decision is made once here, not per candidate).
    lp_incremental: bool,
}

type FragResult = Result<Option<Fragment>, Stop>;
type Found = ControlFlow<Result<Fragment, Stop>>;
/// Outcome slot of one parallel sibling branch: the child fragment paired
/// with the branch arena it references (kept alive for the merge/rebase
/// pass at the join), or the branch's stop.
type SiblingResult = Result<Option<(Fragment, SpecialArena)>, Stop>;

impl<'h> LogKEngine<'h> {
    /// Creates an engine over `hg` with the given configuration.
    pub fn new(hg: &'h Hypergraph, ctrl: &'h Control, cfg: EngineConfig) -> Self {
        assert!(cfg.k >= 1, "width parameter k must be at least 1");
        let mut order: Vec<Edge> = hg.edge_ids().collect();
        match cfg.candidate_order {
            // ConnCoverage re-sorts per subproblem in `child_loop`; its
            // static rank (the tie-break) is the arity order.
            CandidateOrder::Arity | CandidateOrder::ConnCoverage => {
                order.sort_unstable_by_key(|&e| (std::cmp::Reverse(hg.edge(e).len()), e.0));
            }
            CandidateOrder::DegreeCoverage => {
                // deg(v) = number of edges containing v; an edge's score
                // is the degree mass it covers. One pass over the edge
                // lists, O(Σ|e|).
                let mut deg = vec![0u64; hg.num_vertices()];
                for e in hg.edge_ids() {
                    for v in hg.edge(e) {
                        deg[v.0 as usize] += 1;
                    }
                }
                let scores: Vec<u64> = (0..hg.num_edges())
                    .map(|e| {
                        hg.edge(Edge(e as u32))
                            .iter()
                            .map(|v| deg[v.0 as usize])
                            .sum()
                    })
                    .collect();
                order.sort_unstable_by_key(|&e| {
                    (
                        std::cmp::Reverse(scores[e.0 as usize]),
                        std::cmp::Reverse(hg.edge(e).len()),
                        e.0,
                    )
                });
            }
        }
        let mut edge_rank = vec![0u32; hg.num_edges()];
        for (rank, e) in order.into_iter().enumerate() {
            edge_rank[e.0 as usize] = rank as u32;
        }
        // One λp memo entry ≈ the ⋃λp key (one vertex bitset) plus the
        // memoised component (vertex bitset + subproblem edge/special
        // bitsets) plus map overhead.
        let vs_bytes = hg.num_vertices().div_ceil(64) * 8;
        let es_bytes = hg.num_edges().div_ceil(64) * 8;
        let entry_bytes = 2 * vs_bytes + 2 * es_bytes + 96;
        let lp_memo_cap = (LP_MEMO_BYTES / entry_bytes).clamp(16, 1 << 15);
        let lp_incremental = match cfg.lambda_p_incremental {
            LpMode::Never => false,
            LpMode::Always => true,
            LpMode::Auto => hg.num_vertices().div_ceil(64) > LP_INCREMENTAL_AUTO_WORDS,
        };
        LogKEngine {
            hg,
            ctrl,
            cfg,
            stats: EngineStats::default(),
            edge_rank,
            cache: Arc::new(SubproblemCache::new(cfg.cache_bytes)),
            detk_memo: Arc::new(SharedMemo::new(cfg.k, cfg.detk_cache_cap)),
            branch_pool: std::sync::Mutex::new(Vec::new()),
            detk_pool: std::sync::Mutex::new(Vec::new()),
            lp_memo_cap,
            lp_incremental,
        }
    }

    /// Like [`Self::new`], but memoising into caller-owned tables, so
    /// verdicts survive the solve and are shared across solves (the
    /// `htdserve` server hands repeated queries the same pair).
    ///
    /// # Soundness contract
    ///
    /// Cached verdicts are relative to a hypergraph and a width bound:
    /// `cache` must only ever be shared between engines over the **same
    /// hypergraph** (same edge numbering) at the **same `k`**, and
    /// `detk_memo.k()` must equal `cfg.k` (asserted). The
    /// `htdserve::TableHub` enforces this by keying table pairs by
    /// instance content and width.
    pub fn with_tables(
        hg: &'h Hypergraph,
        ctrl: &'h Control,
        cfg: EngineConfig,
        cache: Arc<SubproblemCache>,
        detk_memo: Arc<SharedMemo>,
    ) -> Self {
        assert_eq!(
            detk_memo.k(),
            cfg.k,
            "shared det-k memo must match the engine's width bound"
        );
        LogKEngine {
            cache,
            detk_memo,
            ..Self::new(hg, ctrl, cfg)
        }
    }

    /// Search statistics of the last [`Self::decompose`] call.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Snapshot of the subproblem-cache counters.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.cache.snapshot()
    }

    /// Snapshot of the shared `det-k-decomp` memo-table counters.
    pub fn detk_memo_snapshot(&self) -> MemoSnapshot {
        self.detk_memo.snapshot()
    }

    /// Decides `hw(H) ≤ k`, materialising a witness HD on success.
    ///
    /// Per the "no special treatment of the root" optimisation, this is a
    /// single call `Decomp(⟨E(H), ∅⟩, ∅, E(H))`: the search starts with a
    /// balanced separator right away.
    pub fn decompose(&self) -> Result<Option<Decomposition>, Interrupted> {
        if self.hg.num_edges() == 0 {
            return Ok(Some(Decomposition::singleton(vec![], self.hg.vertex_set())));
        }
        let mut arena = SpecialArena::new();
        let mut stack = ScratchStack::new();
        let sub = Subproblem::whole(self.hg);
        let conn = self.hg.vertex_set();
        let allowed = Arc::new(self.hg.all_edges());
        let result = self.decomp(&mut arena, &sub, &conn, &allowed, 0, None, &mut stack);
        self.fold_meters(stack_totals(&stack));
        match result {
            Ok(Some(frag)) => Ok(Some(
                frag.into_decomposition()
                    .expect("whole-graph fragments have no special leaves"),
            )),
            Ok(None) => Ok(None),
            Err(Stop::External(e)) => Err(e),
            Err(Stop::Pruned) => unreachable!("no enclosing race at the top level"),
        }
    }

    /// Folds retired scratch meters into the engine statistics.
    fn fold_meters(&self, t: MeterTotals) {
        self.stats
            .scratch_grow_events
            .fetch_add(t.grow, Ordering::Relaxed);
        self.stats
            .lambda_c_rejected
            .fetch_add(t.rejected_c, Ordering::Relaxed);
        self.stats
            .lambda_p_rejected
            .fetch_add(t.rejected_p, Ordering::Relaxed);
        self.stats
            .lambda_p_prefiltered
            .fetch_add(t.prefiltered_p, Ordering::Relaxed);
        self.stats
            .separations
            .fetch_add(t.separations, Ordering::Relaxed);
    }

    /// Function `Decomp(H', Conn, A)` of Algorithm 2, wrapped with the
    /// subproblem memoisation.
    #[allow(clippy::too_many_arguments)]
    fn decomp(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        stack: &mut ScratchStack,
    ) -> FragResult {
        poll(self.ctrl, prune)?;
        self.stats.max_depth.fetch_max(depth + 1, Ordering::Relaxed);
        self.stats.decomp_calls.fetch_add(1, Ordering::Relaxed);

        // Base cases (lines 5–10).
        if sub.edges.len() <= self.cfg.k && sub.specials.is_empty() {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }
        if sub.edges.is_empty() && sub.specials.len() == 1 {
            let s = sub.specials[0];
            return Ok(Some(Fragment::special_leaf(s, arena.get(s).clone())));
        }
        if sub.edges.is_empty() && sub.specials.len() > 1 {
            return Ok(None); // negative base case
        }

        // Memoisation: the borrowed-key probe resolves special-edge ids to
        // vertex sets, so verdicts are meaningful across branches and
        // recursion levels. A negative hit fails immediately; a positive
        // hit returns the stored fragment re-interned into this branch's
        // arena — no re-derivation either way.
        let pending = if self.cache.enabled() {
            match self.cache.probe(arena, sub, conn, allowed) {
                Probe::Negative => return Ok(None),
                Probe::Positive(frag) => return Ok(Some(frag)),
                Probe::Miss(hash) => Some(hash),
            }
        } else {
            None
        };

        let result = self.solve_subproblem(arena, sub, conn, allowed, depth, prune, stack);
        if let Some(hash) = pending {
            match &result {
                // `Ok(None)` is only reachable by exhausting the search
                // space: pruned or interrupted branches propagate `Err`
                // instead, so the negative verdict is safe to share.
                Ok(None) => self.cache.insert_negative(hash, arena, sub, conn, allowed),
                // A found fragment is a complete witness — always safe.
                // Only fragments up to the configured node count are
                // stored: insert cost scales with the fragment while
                // re-use concentrates on small ones, so memoising the
                // big fragments of the (unique) success path would only
                // tax trivial instances — measured by `bounded40_k2`
                // (the low-reuse contrast in `micro/neg_cache`), with
                // the preserved wins on `micro/pos_cache`.
                Ok(Some(frag)) if frag.num_nodes() <= self.cfg.pos_cache_max_frag => self
                    .cache
                    .insert_positive(hash, arena, sub, conn, allowed, frag),
                Ok(Some(_)) | Err(_) => {}
            }
        }
        result
    }

    /// The body of `Decomp` past base cases and memoisation: hybrid
    /// handoff, then the child loop over λc candidates.
    #[allow(clippy::too_many_arguments)]
    fn solve_subproblem(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        stack: &mut ScratchStack,
    ) -> FragResult {
        // Hybrid handoff (Appendix D.2): once the subproblem is simple,
        // delegate to det-k-decomp (extended to special edges). Every
        // handoff shares the engine-wide memo table, so det-k work done by
        // one branch is never repeated by another.
        if let Some(h) = self.cfg.hybrid {
            if h.metric.evaluate(self.hg, arena, sub, self.cfg.k) < h.threshold {
                // Reuse a warm det-k scratch stack from the engine pool;
                // allocate a cold one only when every warm stack is in
                // use by a sibling branch.
                let scratch = self
                    .detk_pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop()
                    .unwrap_or_else(|| {
                        self.stats.scratch_allocs.fetch_add(1, Ordering::Relaxed);
                        DetkScratch::new()
                    });
                let grow_before = scratch.grow_events();
                let mut detk = DetKDecomp::new(self.hg, self.cfg.k, self.ctrl)
                    .with_shared_memo(self.detk_memo.as_ref())
                    .with_scratch(scratch);
                let result = detk.decompose(arena, sub, conn).map_err(Stop::External);
                self.stats.detk_handoffs.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .detk_cache_peak
                    .fetch_max(self.detk_memo.len(), Ordering::Relaxed);
                let scratch = detk.take_scratch();
                self.stats
                    .scratch_grow_events
                    .fetch_add(scratch.grow_events() - grow_before, Ordering::Relaxed);
                self.detk_pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(scratch);
                return result;
            }
        }

        let mut lvl = stack.take(depth).unwrap_or_else(|| {
            self.stats.scratch_allocs.fetch_add(1, Ordering::Relaxed);
            LevelScratch::default()
        });
        let result = self.child_loop(arena, sub, conn, allowed, depth, prune, stack, &mut lvl);
        stack.put(depth, lvl);
        result
    }

    /// `ChildLoop` (Algorithm 2, lines 11–44): enumerate λc candidates,
    /// sequentially or raced across the rayon pool.
    #[allow(clippy::too_many_arguments)]
    fn child_loop(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        stack: &mut ScratchStack,
        lvl: &mut LevelScratch,
    ) -> FragResult {
        // λp memo keys are only meaningful for one subproblem.
        lvl.lp_memo.clear();
        let (mut ctx, bufs) = lvl.split(stack);
        let EnumBufs {
            vsub,
            cands,
            lam_buf,
        } = bufs;

        ctx.meters
            .bump_grow(sub.vertices_into(self.hg, arena, vsub));
        // λc candidates: allowed edges touching the subproblem, in
        // balance-likelihood order. Edges disjoint from V(H') cannot
        // contribute to χc, to balance checks or to Conn coverage, so
        // dropping them preserves completeness.
        let cands_cap = cands.capacity();
        cands.clear();
        cands.extend(allowed.iter().filter(|&e| self.hg.edge(e).intersects(vsub)));
        cands.sort_unstable_by_key(|&e| self.edge_rank[e.0 as usize]);
        if self.cfg.candidate_order == CandidateOrder::ConnCoverage && !conn.is_empty() {
            // Per-subproblem refinement: candidates covering more of the
            // current connector first (one fused intersection count per
            // candidate), static rank as the tie-break.
            cands.sort_unstable_by_key(|&e| {
                (
                    std::cmp::Reverse(self.hg.edge(e).intersection_len(conn)),
                    self.edge_rank[e.0 as usize],
                )
            });
        }
        ctx.meters.bump_grow(cands.capacity() > cands_cap);

        let checkpoint = arena.len();
        let result = if depth < self.cfg.parallel_depth && cands.len() > 1 {
            // Seal once so every branch checkpoint is an Arc bump.
            arena.seal();
            self.child_loop_parallel(arena, sub, conn, allowed, depth, prune, vsub, cands)
        } else {
            let lam_cap = lam_buf.capacity();
            let found = for_each_subset_in(cands, self.cfg.k, lam_buf, |lam_c| {
                self.try_child(
                    arena, sub, conn, allowed, depth, prune, vsub, cands, lam_c, &mut ctx,
                )
            });
            ctx.meters.bump_grow(lam_buf.capacity() > lam_cap);
            match found {
                Some(Ok(f)) => Ok(Some(f)),
                Some(Err(e)) => Err(e),
                None => Ok(None), // line 44: exhausted search space
            }
        };
        // Stack discipline: whatever happened below, only specials that
        // existed on entry may be referenced by the returned fragment.
        arena.truncate(checkpoint);
        lvl.retire_lp_memo();
        result
    }

    /// Races the λc search space across the work-stealing pool,
    /// partitioned by the lead candidate index — the partitioning scheme
    /// of Appendix D.1 — via recursive [`rayon::join`] splitting: the
    /// lead range is halved until single leads remain, each split's right
    /// half published for idle workers to steal. Balanced splitting is
    /// what lets the pool absorb the wildly uneven per-lead subtree costs
    /// (an early lead can exhaust a huge subset space while a later one
    /// succeeds instantly); the old single atomic hand-out counter
    /// serialised exactly there. Early-cancel: every split and every
    /// branch polls the [`Prune`] chain, so subtrees not yet started are
    /// dropped as soon as a sibling wins.
    ///
    /// The caller has sealed `arena`, so each branch's checkpoint shares
    /// the immutable prefix instead of deep-copying it.
    #[allow(clippy::too_many_arguments)]
    fn child_loop_parallel(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        cands: &[Edge],
    ) -> FragResult {
        let won = AtomicBool::new(false);
        let race = Prune {
            flag: &won,
            parent: prune,
        };
        let slot: std::sync::Mutex<Option<Result<Fragment, Stop>>> = std::sync::Mutex::new(None);
        let ctx = LeadRace {
            arena,
            sub,
            conn,
            allowed,
            depth,
            vsub,
            cands,
            race: &race,
            won: &won,
            slot: &slot,
        };
        if rayon::current_num_threads() <= 1 {
            // Degenerate 1-worker pool: same branch bodies, no joins —
            // the split tree would only add push/pop traffic nobody can
            // steal from.
            for lead in 0..cands.len() {
                if ctx.race.is_set() {
                    break;
                }
                self.try_lead(lead, &ctx);
            }
        } else {
            self.race_leads(0, cands.len(), &ctx);
        }
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok(frag)) => Ok(Some(frag)),
            Some(Err(e)) => Err(e), // external interruption, first reporter wins
            None => {
                // Either exhausted, or pruned by an *outer* race.
                if prune.is_some_and(|p| p.is_set()) {
                    Err(Stop::Pruned)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Binary `join` split over the lead range `[lo, hi)`. Left half runs
    /// on the current worker; the right half goes on its deque for
    /// thieves (and is popped back for inline execution when nobody
    /// stole it — the sequential degenerate costs one push/pop per
    /// level, no threads).
    fn race_leads(&self, lo: usize, hi: usize, ctx: &LeadRace<'_>) {
        if ctx.race.is_set() {
            return;
        }
        if hi - lo == 1 {
            self.try_lead(lo, ctx);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        rayon::join(
            || self.race_leads(lo, mid, ctx),
            || self.race_leads(mid, hi, ctx),
        );
    }

    /// One branch of the λc race: enumerates every λc whose minimal
    /// member is `cands[lead]`, on branch-private arena and scratch.
    fn try_lead(&self, lead: usize, ctx: &LeadRace<'_>) {
        if ctx.race.is_set() {
            return;
        }
        let mut branch_arena = ctx.arena.clone();
        self.stats
            .arena_branch_clones
            .fetch_add(1, Ordering::Relaxed);
        // Reuse a warm scratch bundle from the engine pool; allocate
        // only when every warm bundle is in use by a sibling branch.
        let recycled = self
            .branch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        let mut branch = recycled.unwrap_or_else(|| {
            self.stats.scratch_allocs.fetch_add(1, Ordering::Relaxed);
            BranchScratch::default()
        });
        let BranchScratch {
            stack: branch_stack,
            lvl,
            reported: _,
        } = &mut branch;
        // The branch enumerates the caller's (sealed-level) `vsub` and
        // `cands`; its own enumeration buffers serve only the subset
        // walk. Its λp memo is branch-local and keyed per subproblem.
        lvl.lp_memo.clear();
        let (mut cctx, bufs) = lvl.split(branch_stack);
        let lam_cap = bufs.lam_buf.capacity();
        let found =
            for_each_subset_with_lead_in(ctx.cands, lead, self.cfg.k, bufs.lam_buf, |lam_c| {
                self.try_child(
                    &mut branch_arena,
                    ctx.sub,
                    ctx.conn,
                    ctx.allowed,
                    ctx.depth,
                    Some(ctx.race),
                    ctx.vsub,
                    ctx.cands,
                    lam_c,
                    &mut cctx,
                )
            });
        cctx.meters.bump_grow(bufs.lam_buf.capacity() > lam_cap);
        match found {
            Some(Ok(frag)) => {
                let mut slot = ctx.slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(Ok(frag));
                }
                drop(slot);
                ctx.won.store(true, Ordering::Relaxed);
            }
            Some(Err(Stop::Pruned)) => {} // a sibling won or an outer race ended
            Some(Err(e @ Stop::External(_))) => {
                // Interruption: report it (unless a success raced ahead)
                // and cancel the remaining branches.
                let mut slot = ctx.slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(Err(e));
                }
                drop(slot);
                ctx.won.store(true, Ordering::Relaxed);
            }
            None => {}
        }
        let totals = branch.totals();
        self.fold_meters(totals - branch.reported);
        branch.reported = totals;
        branch.lvl.retire_lp_memo();
        self.branch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(branch);
    }

    /// One iteration of `ChildLoop` (Algorithm 2, lines 11–43).
    ///
    /// A *rejected* candidate — the overwhelmingly common case — runs
    /// entirely inside the level's scratch buffers: no heap allocation.
    #[allow(clippy::too_many_arguments)]
    fn try_child(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        cands: &[Edge],
        lam_c: &[Edge],
        ctx: &mut ChildCtx<'_>,
    ) -> Found {
        if let Err(e) = poll(self.ctrl, prune) {
            return ControlFlow::Break(Err(e));
        }
        let ChildCtx {
            meters,
            seps_c,
            union_c,
            chi_root,
            cands_p,
            lam_buf_p,
            touch_uc,
            x_conn,
            conn_uc,
            touch_x,
            spill_touch,
            lp_union_stack,
            lp_touch_stack,
            pair,
        } = ctx;
        // λc must contain a "new" edge (progress, Def. 3.5(2)).
        if !lam_c.iter().any(|e| sub.edges.contains(*e)) {
            meters.reject_c();
            return ControlFlow::Continue(());
        }
        meters.bump_grow(self.hg.union_of_slice_into(lam_c, union_c));
        // Line 12: [λc]-components of H'.
        meters.bump_separation();
        separate_into(self.hg, arena, sub, union_c, pair.down.bfs, seps_c);
        // Line 13: χc must be a balanced separator of H'. (⋃λc
        // over-approximates χc: if ⋃λc is unbalanced, so is χc.)
        if seps_c.components.iter().any(|c| 2 * c.size() > sub.size()) {
            meters.reject_c();
            return ControlFlow::Continue(()); // line 14
        }

        // Lines 15–21: root case — λc covers the interface to the part
        // above, so c is the root of this HD-fragment.
        if conn.is_subset_of(union_c) {
            match self.try_as_root(
                arena,
                allowed,
                depth,
                prune,
                vsub,
                lam_c,
                union_c,
                seps_c,
                chi_root,
                &mut pair.down,
            ) {
                Ok(Some(frag)) => return ControlFlow::Break(Ok(frag)),
                Ok(None) => {
                    if !self.cfg.root_fallthrough {
                        meters.reject_c();
                        return ControlFlow::Continue(()); // line 20
                    }
                    // fall through to the pair search below
                }
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }

        // Lines 22–43: parent/child pair search.
        // λp candidates: allowed edges intersecting ⋃λc (Theorem C.1) that
        // also touch the subproblem, tried in balance-likelihood order.
        // `cands` is exactly the allowed-∩-touching-V(H') list in rank
        // order, so one coverage-mask membership test per edge filters it
        // — no per-edge vertex-set intersection, no re-sort.
        let cands_p_cap = cands_p.capacity();
        cands_p.clear();
        if self.cfg.restrict_parent_search {
            meters.bump_grow(self.hg.edges_touching_into(union_c, touch_uc));
            cands_p.extend(cands.iter().copied().filter(|&e| touch_uc.contains(e)));
        } else {
            cands_p.extend_from_slice(cands);
        }
        meters.bump_grow(cands_p.capacity() > cands_p_cap);

        // λp admissibility pre-filter, per-λc part (see [`PreFilter`] for
        // the soundness arguments; every test below rejects a candidate
        // only when the full separation would reject it too).
        let prefilter = if self.cfg.lambda_p_prefilter {
            // Exclusion baseline: members touching `X = Conn \ ⋃λc` can
            // never lie in `comp_down`. Both per-λc sets are assembled in
            // one fused pass each.
            meters.bump_grow(x_conn.assign_diff_and(conn, union_c, vsub));
            meters.bump_grow(conn_uc.assign_and3(conn, union_c, vsub));
            meters.bump_grow(self.hg.edges_touching_into(x_conn, touch_x));
            touch_x.intersect_with(&sub.edges);
            let base_excluded = touch_x.len()
                + sub
                    .specials
                    .iter()
                    .filter(|&&s| arena.get(s).intersects(x_conn))
                    .count();
            // If the λp-independent exclusions already claim half the
            // members, no λp can produce an oversized `comp_down`: the
            // whole parent loop is skipped, counted at the size of the
            // subset space it would have enumerated.
            if 2 * base_excluded >= sub.size() {
                let skipped =
                    subset_space_size(cands_p.len(), self.cfg.k).min(u64::MAX as u128) as u64;
                meters.prefilter_p(skipped);
                meters.reject_c();
                return ControlFlow::Continue(());
            }

            Some(PreFilter {
                x_conn,
                conn_uc,
                touch_x,
            })
        } else {
            None
        };
        let lam_p_cap = lam_buf_p.capacity();
        let found = if let (Some(pf), true) = (prefilter.as_ref(), self.lp_incremental) {
            // Incremental pre-filter walk: the coverage-touch mask of the
            // λp spill — a vertex walk over `(⋃λp \ ⋃λc) ∩ V(H')`
            // recomputed for every (λc, λp) pair in the default mode — is
            // maintained across the subset walk instead. Per λc, one mask
            // per *candidate edge* is precomputed; per *push* of the walk
            // the prefix's union and touch mask extend by one
            // word-parallel union; per visited λp the filter reads the
            // stack tops. Depth-indexed stacks make pops free (the next
            // push at a depth overwrites it).
            let k = self.cfg.k;
            meters.bump_grow(spill_touch.reset(cands_p.len(), self.hg.num_edges()));
            for (i, &e) in cands_p.iter().enumerate() {
                // spill_e = (V(e) \ ⋃λc) ∩ V(H'), assembled in `bad`
                // (free at this point: the walk below owns it per λp),
                // its touch mask written straight into SoA row `i`.
                meters.bump_grow(pair.bad.assign_diff_and(self.hg.edge(e), union_c, vsub));
                self.hg.edges_touching_into_row(pair.bad, spill_touch, i);
            }
            if lp_union_stack.len() < k {
                lp_union_stack.resize_with(k, VertexSet::default);
                lp_touch_stack.resize_with(k, EdgeSet::default);
            }
            for_each_subset_driven_in(cands_p, k, lam_buf_p, |step| match step {
                SubsetStep::Push {
                    edge,
                    index,
                    depth: d,
                } => {
                    if d == 0 {
                        meters.bump_grow(lp_union_stack[0].copy_from(self.hg.edge(edge)));
                        meters.bump_grow(spill_touch.copy_row_into(index, &mut lp_touch_stack[0]));
                    } else {
                        let (head, tail) = lp_union_stack.split_at_mut(d);
                        meters.bump_grow(tail[0].copy_from(&head[d - 1]));
                        tail[0].union_with(self.hg.edge(edge));
                        let (head, tail) = lp_touch_stack.split_at_mut(d);
                        meters.bump_grow(tail[0].copy_from(&head[d - 1]));
                        spill_touch.or_row_into(index, &mut tail[0]);
                    }
                    ControlFlow::Continue(())
                }
                SubsetStep::Pop { .. } => ControlFlow::Continue(()),
                SubsetStep::Visit { subset: lam_p } => {
                    let top = lam_p.len() - 1;
                    self.try_parent(
                        arena,
                        sub,
                        conn,
                        allowed,
                        depth,
                        prune,
                        vsub,
                        lam_c,
                        union_c,
                        lam_p,
                        LpFilter::Incremental(LpIncremental {
                            pf,
                            union_p: &lp_union_stack[top],
                            touch_spill: &lp_touch_stack[top],
                        }),
                        pair,
                    )
                }
            })
        } else {
            for_each_subset_in(cands_p, self.cfg.k, lam_buf_p, |lam_p| {
                let lp = match prefilter.as_ref() {
                    Some(pf) => LpFilter::PerPair(pf),
                    None => LpFilter::Off,
                };
                self.try_parent(
                    arena, sub, conn, allowed, depth, prune, vsub, lam_c, union_c, lam_p, lp, pair,
                )
            })
        };
        meters.bump_grow(lam_buf_p.capacity() > lam_p_cap);
        match found {
            Some(r) => ControlFlow::Break(r),
            None => {
                meters.reject_c();
                ControlFlow::Continue(())
            }
        }
    }

    /// Lines 15–21: treat `c` as the root of the current HD-fragment.
    #[allow(clippy::too_many_arguments)]
    fn try_as_root(
        &self,
        arena: &mut SpecialArena,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        lam_c: &[Edge],
        union_c: &VertexSet,
        seps_c: &Separation,
        chi_root: &mut VertexSet,
        down: &mut DownCtx<'_>,
    ) -> FragResult {
        // Line 16: χc = ⋃λc ∩ V(H'), one fused pass.
        down.meters.bump_grow(chi_root.assign_and(union_c, vsub));
        // Lines 17–20: solve the [λc]-components, concurrently when the
        // grain gate passes (see `solve_siblings`).
        let Some(children) = self.solve_siblings(
            arena,
            allowed,
            depth,
            prune,
            chi_root,
            &seps_c.components,
            down.meters,
            down.conn_child,
            down.stack,
        )?
        else {
            return Ok(None); // line 20
        };
        let mut frag = Fragment::leaf(lam_c.to_vec(), chi_root.clone());
        for f in children {
            frag.attach_under(0, f);
        }
        for &s in &seps_c.covered_specials {
            frag.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        Ok(Some(frag)) // line 21
    }

    /// One iteration of `ParentLoop` (lines 22–43).
    #[allow(clippy::too_many_arguments)]
    fn try_parent(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        lam_c: &[Edge],
        union_c: &VertexSet,
        lam_p: &[Edge],
        lp: LpFilter<'_>,
        pair: &mut PairCtx<'_>,
    ) -> Found {
        if let Err(e) = poll(self.ctrl, prune) {
            return ControlFlow::Break(Err(e));
        }
        let PairCtx {
            seps_p,
            union_p: union_p_buf,
            chi_pair,
            bad,
            bad_tmp,
            touch_bad,
            touch_uncov,
            lp_memo,
            down,
        } = pair;
        let meters = down.meters;
        // λp must also contain a "new" edge (Appendix C, allowed edges).
        if !lam_p.iter().any(|e| sub.edges.contains(*e)) {
            meters.reject_p();
            return ControlFlow::Continue(());
        }
        // ⋃λp: maintained by the incremental walk, else computed into the
        // level buffer.
        let union_p: &VertexSet = match &lp {
            LpFilter::Incremental(i) => i.union_p,
            _ => {
                meters.bump_grow(self.hg.union_of_slice_into(lam_p, union_p_buf));
                union_p_buf
            }
        };
        // Admissibility pre-filter (see [`PreFilter`]): members touching
        // `bad = ((⋃λp \ ⋃λc) ∪ (Conn \ (⋃λc ∩ ⋃λp))) ∩ V(H')` are
        // provably outside any admissible `comp_down`; if at most half the
        // members remain, the checks of lines 24–32 cannot all pass and
        // the BFS separation is skipped. The two filtering modes assemble
        // `touch_bad` differently — per-pair walks `bad`'s set bits, the
        // incremental mode reads the walk's stack and only walks the
        // (small) uncovered-connector part — but reject identically.
        if let Some(pf) = lp.prefilter() {
            // `bad = ((⋃λp \ ⋃λc) ∩ V(H')) ∪ ((Conn ∩ ⋃λc ∩ V(H')) \ ⋃λp)`
            // in one fused pass over the four operands, its emptiness a
            // by-product — previously five chained two-operand passes
            // plus an emptiness scan.
            let (grew, nonempty) = bad.assign_lp_bad(union_p, union_c, vsub, pf.conn_uc);
            meters.bump_grow(grew);
            // With `bad` empty the λp-independent baseline already passed
            // the half-size test in `try_child`, so rejection is
            // impossible — go straight to the separation.
            if nonempty {
                match &lp {
                    LpFilter::Off => unreachable!("prefilter() returned Some"),
                    LpFilter::PerPair(_) => {
                        meters.bump_grow(self.hg.edges_touching_into(bad, touch_bad));
                    }
                    LpFilter::Incremental(i) => {
                        meters.bump_grow(touch_bad.copy_from(i.touch_spill));
                        // uncov = (Conn ∩ ⋃λc ∩ V(H')) \ ⋃λp — the only
                        // coverage walk left on the incremental path.
                        meters.bump_grow(bad_tmp.copy_from(pf.conn_uc));
                        bad_tmp.difference_with(union_p);
                        if !bad_tmp.is_empty() {
                            meters.bump_grow(self.hg.edges_touching_into(bad_tmp, touch_uncov));
                            touch_bad.union_with(touch_uncov);
                        }
                    }
                }
                // `|(touch_bad ∩ E') ∪ touch_x|` in one counting pass
                // (`touch_x` is already ⊆ E'), nothing materialised.
                let excluded = touch_bad.count_intersect_union(&sub.edges, pf.touch_x)
                    + sub
                        .specials
                        .iter()
                        .filter(|&&s| {
                            let g = arena.get(s);
                            g.intersects(bad) || g.intersects(pf.x_conn)
                        })
                        .count();
                if 2 * excluded >= sub.size() {
                    meters.prefilter_p(1);
                    return ControlFlow::Continue(());
                }
            }
        }
        // Line 23: [λp]-components of H'. The split depends only on
        // `(H', ⋃λp)` — not on λc — and the same λp sets recur across
        // every λc's parent loop of this `Decomp` node, so the node-local
        // memo serves repeat candidates without re-running the BFS. Only
        // `comp_down` is stored: lines 28–43 never look at the small
        // components of the λp split.
        if self.cfg.lambda_p_prefilter {
            if let Some(cached) = lp_memo.get(union_p) {
                let Some(comp_down) = cached else {
                    meters.reject_p();
                    return ControlFlow::Continue(());
                };
                return self.check_pair(
                    arena, sub, conn, allowed, depth, prune, lam_c, union_c, union_p, comp_down,
                    chi_pair, down,
                );
            }
        }
        meters.bump_separation();
        separate_into(self.hg, arena, sub, union_p, down.bfs, seps_p);
        // Lines 24–27: the oversized component becomes comp_down.
        let over = seps_p.oversized_component(sub.size());
        if self.cfg.lambda_p_prefilter && lp_memo.len() < self.lp_memo_cap {
            lp_memo.insert(union_p.clone(), over.map(|i| seps_p.components[i].clone()));
        }
        let Some(i) = over else {
            meters.reject_p();
            return ControlFlow::Continue(());
        };
        self.check_pair(
            arena,
            sub,
            conn,
            allowed,
            depth,
            prune,
            lam_c,
            union_c,
            union_p,
            &seps_p.components[i],
            chi_pair,
            down,
        )
    }

    /// Lines 28–43 against a fixed `comp_down` (freshly separated or
    /// served from the node-local λp memo): χc, the connectedness and
    /// trace checks, then the below/above recursions.
    #[allow(clippy::too_many_arguments)]
    fn check_pair(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        lam_c: &[Edge],
        union_c: &VertexSet,
        union_p: &VertexSet,
        comp_down: &Component,
        chi_pair: &mut VertexSet,
        down: &mut DownCtx<'_>,
    ) -> Found {
        let meters = down.meters;
        // Line 28: χc = ⋃λc ∩ V(comp_down), one fused pass.
        meters.bump_grow(chi_pair.assign_and(union_c, &comp_down.vertices));
        // Lines 29–30: Conn connectedness against λp —
        // `(V(comp_down) ∩ Conn) ⊆ ⋃λp`, checked word-parallel without
        // materialising the intersection.
        if comp_down.vertices.intersects_outside(conn, union_p) {
            meters.reject_p();
            return ControlFlow::Continue(());
        }
        // Lines 31–32: λp's trace on comp_down must lie inside χc.
        if comp_down.vertices.intersects_outside(union_p, chi_pair) {
            meters.reject_p();
            return ControlFlow::Continue(());
        }

        match self.finish_pair(
            arena, sub, conn, allowed, depth, prune, lam_c, chi_pair, comp_down, down,
        ) {
            Ok(Some(frag)) => ControlFlow::Break(Ok(frag)),
            Ok(None) => {
                meters.reject_p();
                ControlFlow::Continue(()) // lines 37/42: reject parent
            }
            Err(e) => ControlFlow::Break(Err(e)),
        }
    }

    /// Lines 33–43: recurse below `c` and above `c`, then stitch.
    #[allow(clippy::too_many_arguments)]
    fn finish_pair(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        lam_c: &[Edge],
        chi_c: &VertexSet,
        comp_down: &Component,
        down: &mut DownCtx<'_>,
    ) -> FragResult {
        let DownCtx {
            meters,
            bfs,
            seps_down,
            conn_child,
            stack,
        } = down;
        // Line 33: [χc]-components of comp_down.
        meters.bump_separation();
        separate_into(
            self.hg,
            arena,
            comp_down.as_subproblem(),
            chi_c,
            bfs,
            seps_down,
        );
        // Balance of these components follows from the line-13 check
        // (they refine the [λc]-components of H' — Corollary 3.8).
        debug_assert!(seps_down
            .components
            .iter()
            .all(|c| 2 * c.size() <= sub.size()));

        // Lines 34–37: recurse below, concurrently when the grain gate
        // passes (see `solve_siblings`).
        let Some(below) = self.solve_siblings(
            arena,
            allowed,
            depth,
            prune,
            chi_c,
            &seps_down.components,
            meters,
            conn_child,
            stack,
        )?
        else {
            return Ok(None);
        };

        // Lines 38–40: comp_up := H' \ comp_down plus the new special χc;
        // the fragment above may not use edges from below (allowed edges).
        // This path runs only for candidates that already survived every
        // rejection check and decomposed below, so allocating here is off
        // the per-candidate hot path.
        let mut comp_up = Subproblem {
            edges: sub.edges.difference(comp_down.edges()),
            specials: sub
                .specials
                .iter()
                .copied()
                .filter(|s| !comp_down.specials().contains(s))
                .collect(),
        };
        let mark = arena.len();
        let sc = arena.push(chi_c.clone());
        comp_up.specials.push(sc);
        // The restricted alphabet gets its own `Arc`: every `Decomp` call
        // in the subtree above (and every cache entry they create) shares
        // this one allocation. The unrestricted branch is a refcount bump.
        let allowed_up = if self.cfg.use_allowed_edges {
            Arc::new(allowed.difference(comp_down.edges()))
        } else {
            Arc::clone(allowed)
        };

        // Lines 41–42: recurse above.
        let up = self.decomp(arena, &comp_up, conn, &allowed_up, depth + 1, prune, stack);
        // The special edge χc is consumed here either way: on success the
        // stitching below replaces its leaf, on failure nothing references
        // it. Popping it keeps the arena from accumulating garbage across
        // the (potentially huge) candidate enumeration.
        arena.truncate(mark);
        let Some(mut up_frag) = up? else {
            return Ok(None);
        };

        // Stitch (soundness proof, Appendix A): replace the special leaf
        // for χc by the real node c, attach the below-fragments and leaves
        // for comp_down's covered specials.
        let c_idx = up_frag.replace_special_leaf(sc, lam_c.to_vec(), chi_c.clone());
        for f in below {
            up_frag.attach_under(c_idx, f);
        }
        for &s in &seps_down.covered_specials {
            up_frag.attach_under(c_idx, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        Ok(Some(up_frag)) // line 43
    }

    /// Shared driver of lines 17–20 (root mode) and 34–37 (pair mode):
    /// solves each component of `comps` as its own subproblem with
    /// connector `V(comp) ∩ chi`, returning the child fragments in
    /// component order — or `None` as soon as any child is unsolvable,
    /// which rejects the enclosing candidate.
    ///
    /// The siblings are independent subproblems (they share no vertices
    /// outside the separator), so when the grain gate passes they fan out
    /// on the pool; otherwise — 1-worker pools, sequential engines, depths
    /// past the racing frontier, or loops below the grain floors — they
    /// recurse in place on the caller's arena and scratch, byte-for-byte
    /// the pre-fork/merge loop.
    #[allow(clippy::too_many_arguments)]
    fn solve_siblings(
        &self,
        arena: &mut SpecialArena,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        chi: &VertexSet,
        comps: &[Component],
        meters: &LevelMeters,
        conn_child: &mut VertexSet,
        stack: &mut ScratchStack,
    ) -> Result<Option<Vec<Fragment>>, Stop> {
        if self.split_siblings(depth, comps) {
            return self.solve_siblings_parallel(arena, allowed, depth, prune, chi, comps);
        }
        let mut children = Vec::with_capacity(comps.len());
        for y in comps {
            // Line 18/35: Conn_y = V(y) ∩ χc.
            meters.bump_grow(conn_child.copy_from(&y.vertices));
            conn_child.intersect_with(chi);
            match self.decomp(
                arena,
                y.as_subproblem(),
                conn_child,
                allowed,
                depth + 1,
                prune,
                stack,
            )? {
                Some(f) => children.push(f),
                None => return Ok(None), // line 20/37
            }
        }
        Ok(Some(children))
    }

    /// The sibling-children grain gate: still inside the racing depths,
    /// enough siblings, enough aggregate work, and a pool that can
    /// actually overlap them.
    fn split_siblings(&self, depth: usize, comps: &[Component]) -> bool {
        depth < self.cfg.parallel_depth
            && comps.len() >= self.cfg.child_split_min_components
            && comps.iter().map(|c| c.size()).sum::<usize>() >= self.cfg.child_split_min_size
            && rayon::current_num_threads() > 1
    }

    /// Probes sibling subproblems concurrently under the pool's scope.
    ///
    /// Each sibling runs on a [`SpecialArena::fork`] of the parent arena
    /// (Arc-shared sealed prefix, private tail) with branch scratch drawn
    /// from the engine pool, under a fail-fast [`Prune`] link: the first
    /// definitive `None` (or external interruption) cancels the remaining
    /// siblings at their next poll. Verdict folding at the join, in
    /// precedence order:
    ///
    /// * any child `Ok(None)` → `Ok(None)` — that child exhaustively
    ///   rejected its own subspace, so the enclosing candidate is rejected
    ///   no matter what the cancelled siblings would have said;
    /// * else any external interruption → propagated;
    /// * else any pruned sibling → `Err(Stop::Pruned)` — only an enclosing
    ///   λc race can have caused it;
    /// * else all succeeded → each branch fragment is folded back under
    ///   the parent arena ([`decomp::rebase_fragment`]) and the fragments
    ///   return in component order.
    fn solve_siblings_parallel(
        &self,
        arena: &mut SpecialArena,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        prune: Option<&Prune<'_>>,
        chi: &VertexSet,
        comps: &[Component],
    ) -> Result<Option<Vec<Fragment>>, Stop> {
        decomp::faults::hit_ctrl("logk/engine/child_split", self.ctrl);
        self.stats.child_splits.fetch_add(1, Ordering::Relaxed);
        let checkpoint = arena.len();
        // One fork per sibling, taken up front: the first seals the
        // parent's tail into the shared prefix, the rest are refcount
        // bumps.
        let forks: Vec<SpecialArena> = comps.iter().map(|_| arena.fork()).collect();
        self.stats
            .arena_branch_clones
            .fetch_add(comps.len() as u64, Ordering::Relaxed);
        let failed = AtomicBool::new(false);
        let join = Prune {
            flag: &failed,
            parent: prune,
        };
        let slots: Vec<std::sync::Mutex<Option<SiblingResult>>> =
            comps.iter().map(|_| std::sync::Mutex::new(None)).collect();
        rayon::scope(|s| {
            for ((slot, comp), barena) in slots.iter().zip(comps).zip(forks) {
                let join = &join;
                s.spawn(move |_| {
                    let res = self.solve_sibling_branch(barena, comp, chi, allowed, depth, join);
                    if matches!(res, Ok(None) | Err(Stop::External(_))) {
                        // Fail-fast: this verdict decides the join — stop
                        // the siblings at their next poll.
                        join.flag.store(true, Ordering::Relaxed);
                    }
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                });
            }
        });
        decomp::faults::hit_ctrl("logk/engine/child_join", self.ctrl);
        let mut children = Vec::with_capacity(comps.len());
        let mut rejected = false;
        let mut external: Option<Stop> = None;
        let mut cancelled = 0u64;
        for slot in slots {
            match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(Ok(Some(child))) => children.push(child),
                Some(Ok(None)) => rejected = true,
                Some(Err(e @ Stop::External(_))) => external = external.or(Some(e)),
                Some(Err(Stop::Pruned)) | None => cancelled += 1,
            }
        }
        self.stats
            .child_cancels
            .fetch_add(cancelled, Ordering::Relaxed);
        if rejected {
            // Sound despite the cancelled siblings: the rejecting child
            // exhausted its own subspace, and one unsolvable child rejects
            // the enclosing candidate outright.
            return Ok(None);
        }
        if let Some(e) = external {
            return Err(e);
        }
        if cancelled > 0 {
            // No sibling failed locally, so an enclosing race pruned them.
            debug_assert!(prune.is_some_and(|p| p.is_set()));
            return Err(Stop::Pruned);
        }
        // All children succeeded: fold each branch's fragment back under
        // the parent arena before the caller stitches it. Under the stack
        // discipline this is a verification walk (children restore their
        // arenas before returning, so fragments only reference shared
        // pre-fork ids) — see `decomp::rebase_fragment`.
        let mut out = Vec::with_capacity(children.len());
        for (mut frag, barena) in children {
            rebase_fragment(&mut frag, &barena, checkpoint, arena);
            out.push(frag);
        }
        self.stats
            .arena_rebases
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(Some(out))
    }

    /// One parallel sibling: checks out branch scratch from the engine
    /// pool, computes the child connector `V(comp) ∩ chi` and recurses on
    /// the forked arena. A successful child's fragment returns together
    /// with its branch arena so the join can rebase it under the parent.
    fn solve_sibling_branch(
        &self,
        mut barena: SpecialArena,
        comp: &Component,
        chi: &VertexSet,
        allowed: &Arc<EdgeSet>,
        depth: usize,
        join: &Prune<'_>,
    ) -> SiblingResult {
        decomp::faults::hit_ctrl("logk/engine/child_branch", self.ctrl);
        // Fail-fast before any work: a sibling (or an outer race) may have
        // decided the join while this branch sat on a deque.
        poll(self.ctrl, Some(join))?;
        let recycled = self
            .branch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        let mut branch = recycled.unwrap_or_else(|| {
            self.stats.scratch_allocs.fetch_add(1, Ordering::Relaxed);
            BranchScratch::default()
        });
        let result = {
            let BranchScratch {
                stack,
                lvl,
                reported: _,
            } = &mut branch;
            // Line 18/35 on branch scratch: Conn_y = V(y) ∩ χc.
            lvl.meters
                .bump_grow(lvl.conn_child.copy_from(&comp.vertices));
            lvl.conn_child.intersect_with(chi);
            self.decomp(
                &mut barena,
                comp.as_subproblem(),
                &lvl.conn_child,
                allowed,
                depth + 1,
                Some(join),
                stack,
            )
        };
        let totals = branch.totals();
        self.fold_meters(totals - branch.reported);
        branch.reported = totals;
        branch.lvl.retire_lp_memo();
        self.branch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(branch);
        result.map(|o| o.map(|frag| (frag, barena)))
    }
}
