//! Algorithm 1 of the paper, implemented verbatim, plus the HD-fragment
//! construction from the soundness proof (Appendix A).
//!
//! This is the *reference* implementation: simple, faithful, and slow
//! (each of `RootLoop`, `ParentLoop`, `ChildLoop` scans all `≤ k`-subsets
//! of `E(H)`). It exists so that the optimised and parallel engines have a
//! trusted oracle to be differentially tested against, and so the paper's
//! pseudo-code can be read side by side with running code.
//!
//! The *control flow* is verbatim Algorithm 1; the *memory discipline* is
//! not: like `detk`'s `DetkScratch`, every recursion level owns a
//! `BasicLevel` bundle (BFS scratch plus the `ParentLoop`/`ChildLoop`
//! separations), so component splitting runs through `separate_into` on
//! warm buffers instead of the allocating `separate` wrapper. The oracle
//! is quadratically slower than the engines by design; it does not also
//! need to hammer the allocator.

use std::ops::ControlFlow;
use std::sync::Arc;

use decomp::{Control, Decomposition, Fragment, Interrupted};
use hypergraph::subsets::for_each_subset;
use hypergraph::{
    separate_into, Edge, Hypergraph, LevelStack, Scratch, Separation, SpecialArena, Subproblem,
    VertexSet,
};

/// Result of a solve: `Ok(Some(hd))` on success, `Ok(None)` when no HD of
/// width ≤ k exists, `Err` when interrupted.
pub type SolveResult = Result<Option<Decomposition>, Interrupted>;

/// Decides `hw(H) ≤ k` with Algorithm 1 and, on success, materialises a
/// witness HD of width ≤ k.
pub fn decompose_basic(hg: &Hypergraph, k: usize, ctrl: &Control) -> SolveResult {
    assert!(k >= 1, "width parameter k must be at least 1");
    if hg.num_edges() == 0 {
        // Degenerate: the empty hypergraph has the empty HD; represent it
        // as a single empty node for uniformity.
        return Ok(Some(Decomposition::singleton(vec![], hg.vertex_set())));
    }
    let mut engine = Basic {
        hg,
        k,
        ctrl,
        arena: SpecialArena::new(),
        all_edges: hg.edge_ids().collect(),
        scratch: BasicScratch::default(),
    };
    engine.run()
}

/// Per-recursion-level scratch of the reference search: the BFS workspace
/// and one [`Separation`] per loop that splits components at this level.
#[derive(Default)]
struct BasicLevel {
    bfs: Scratch,
    /// `[λp]`-components of `H'` (`ParentLoop`, line 17).
    seps_p: Separation,
    /// `[χc]`-components of `comp_down` (`ChildLoop`, line 28).
    seps_c: Separation,
}

/// Stack of per-level bundles, taken out while a level is active so the
/// recursion can borrow the stack freely — an instantiation of the
/// generic [`LevelStack`] take/put discipline.
type BasicScratch = LevelStack<BasicLevel>;

struct Basic<'h> {
    hg: &'h Hypergraph,
    k: usize,
    ctrl: &'h Control,
    arena: SpecialArena,
    /// Shared candidate list (Algorithm 1 scans all of `E(H)` in every
    /// loop); `Arc` so the recursion borrows it without a per-call clone.
    all_edges: Arc<[Edge]>,
    scratch: BasicScratch,
}

/// Inner search outcome: a fragment or an interruption, both of which
/// abort the surrounding enumeration.
type Found<T> = ControlFlow<Result<T, Interrupted>>;

impl Basic<'_> {
    fn run(&mut self) -> SolveResult {
        let whole = Subproblem::whole(self.hg);
        let all = Arc::clone(&self.all_edges);
        // The root loop's own split buffers, warm across candidates.
        let mut root_bfs = Scratch::new();
        let mut root_sep = Separation::new();
        let found = for_each_subset(&all, self.k, |lam_r| {
            self.try_root(lam_r, &whole, &mut root_bfs, &mut root_sep)
        });
        match found {
            Some(Ok(d)) => Ok(Some(d)),
            Some(Err(e)) => Err(e),
            None => Ok(None), // exhausted search space (line 10)
        }
    }

    /// One iteration of `RootLoop` (lines 3–9).
    fn try_root(
        &mut self,
        lam_r: &[Edge],
        whole: &Subproblem,
        bfs: &mut Scratch,
        sep: &mut Separation,
    ) -> Found<Decomposition> {
        if let Err(e) = self.ctrl.checkpoint() {
            return ControlFlow::Break(Err(e));
        }
        // χ(r) = ⋃λ(r) by the special condition, so [λr]-components and
        // [χ(r)]-components coincide (line 4).
        let chi_r = self.hg.union_of_slice(lam_r);
        separate_into(self.hg, &self.arena, whole, &chi_r, bfs, sep);
        let mut child_frags = Vec::with_capacity(sep.components.len());
        for y in &sep.components {
            let conn_y = y.vertices.intersection(&chi_r); // line 6
            match self.decomp(y.as_subproblem(), &conn_y, 0) {
                Ok(Some(frag)) => child_frags.push(frag),
                Ok(None) => return ControlFlow::Continue(()), // line 8: reject root
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }
        // Assemble: root node r with the fragments' roots as children.
        let mut frag = Fragment::leaf(lam_r.to_vec(), chi_r);
        for f in child_frags {
            frag.attach_under(0, f);
        }
        let d = frag
            .into_decomposition()
            .expect("top-level fragments contain no special leaves");
        ControlFlow::Break(Ok(d))
    }

    /// Function `Decomp` (lines 11–40), returning the HD-fragment of the
    /// extended subhypergraph `(sub, conn)` if one of width ≤ k exists.
    /// `depth` indexes the scratch stack; the level's bundle is taken out
    /// for the duration so deeper calls borrow the stack freely.
    fn decomp(
        &mut self,
        sub: &Subproblem,
        conn: &VertexSet,
        depth: usize,
    ) -> Result<Option<Fragment>, Interrupted> {
        self.ctrl.checkpoint()?;

        // Base cases (lines 12–15).
        if sub.edges.len() <= self.k && sub.specials.is_empty() {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }
        if sub.edges.is_empty() && sub.specials.len() == 1 {
            let s = sub.specials[0];
            return Ok(Some(Fragment::special_leaf(s, self.arena.get(s).clone())));
        }

        let mut lvl = self.scratch.take_or_default(depth);
        let result = self.decomp_level(sub, conn, depth, &mut lvl);
        self.scratch.put(depth, lvl);
        result
    }

    /// The loops of `Decomp`, running on this level's scratch bundle.
    fn decomp_level(
        &mut self,
        sub: &Subproblem,
        conn: &VertexSet,
        depth: usize,
        lvl: &mut BasicLevel,
    ) -> Result<Option<Fragment>, Interrupted> {
        let all = Arc::clone(&self.all_edges);
        let size = sub.size();
        let BasicLevel {
            bfs,
            seps_p,
            seps_c,
        } = lvl;

        // ParentLoop (line 16).
        let found = for_each_subset(&all, self.k, |lam_p| {
            if let Err(e) = self.ctrl.checkpoint() {
                return ControlFlow::Break(Err(e));
            }
            let up = self.hg.union_of_slice(lam_p);
            // Line 17.
            separate_into(self.hg, &self.arena, sub, &up, bfs, seps_p);
            // Line 18: the (unique) oversized component becomes comp_down.
            let Some(i) = seps_p.oversized_component(size) else {
                return ControlFlow::Continue(()); // line 21
            };
            let comp_down = &seps_p.components[i];
            // Line 22: connectedness check for Conn against λp —
            // `(V(comp_down) ∩ Conn) \ ⋃λp = ∅`, one fused pass, nothing
            // materialised.
            if comp_down.vertices.intersects_outside(conn, &up) {
                return ControlFlow::Continue(()); // line 23
            }

            // ChildLoop (line 24).
            let r = for_each_subset(&all, self.k, |lam_c| {
                self.try_child(sub, conn, lam_c, comp_down, &up, size, depth, bfs, seps_c)
            });
            match r {
                Some(res) => ControlFlow::Break(res),
                None => ControlFlow::Continue(()),
            }
        });
        match found {
            Some(Ok(f)) => Ok(Some(f)),
            Some(Err(e)) => Err(e),
            None => Ok(None), // line 40: exhausted search space
        }
    }

    /// One iteration of `ChildLoop` (lines 25–39).
    #[allow(clippy::too_many_arguments)]
    fn try_child(
        &mut self,
        sub: &Subproblem,
        conn: &VertexSet,
        lam_c: &[Edge],
        comp_down: &hypergraph::Component,
        up: &VertexSet, // ⋃λp
        size: usize,
        depth: usize,
        bfs: &mut Scratch,
        seps_c: &mut Separation,
    ) -> Found<Fragment> {
        if let Err(e) = self.ctrl.checkpoint() {
            return ControlFlow::Break(Err(e));
        }
        // Line 25: χc = ⋃λc ∩ V(comp_down) (minimal χ, Definition 3.5(3)).
        let mut chi_c = self.hg.union_of_slice(lam_c);
        chi_c.intersect_with(&comp_down.vertices);
        // Line 26: connectedness check, fused like line 22.
        if comp_down.vertices.intersects_outside(up, &chi_c) {
            return ControlFlow::Continue(()); // line 27
        }
        // Line 28: [χc]-components of comp_down.
        separate_into(
            self.hg,
            &self.arena,
            comp_down.as_subproblem(),
            &chi_c,
            bfs,
            seps_c,
        );
        // Line 29: balancedness of the child.
        if seps_c.components.iter().any(|c| 2 * c.size() > size) {
            return ControlFlow::Continue(()); // line 30
        }

        // Lines 31–34: recurse below the child.
        let mut below = Vec::with_capacity(seps_c.components.len());
        for x in &seps_c.components {
            let conn_x = x.vertices.intersection(&chi_c); // line 32
            match self.decomp(x.as_subproblem(), &conn_x, depth + 1) {
                Ok(Some(f)) => below.push(f),
                Ok(None) => return ControlFlow::Continue(()), // line 34
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }

        // Lines 35–36: comp_up := H' \ comp_down, plus χc as a new special.
        let mut comp_up = Subproblem {
            edges: sub.edges.difference(comp_down.edges()),
            specials: sub
                .specials
                .iter()
                .copied()
                .filter(|s| !comp_down.specials().contains(s))
                .collect(),
        };
        let sc = self.arena.push(chi_c.clone());
        comp_up.specials.push(sc);

        // Line 37: recurse above the child.
        let mut up_frag = match self.decomp(&comp_up, conn, depth + 1) {
            Ok(Some(f)) => f,
            Ok(None) => return ControlFlow::Continue(()), // line 38
            Err(e) => return ControlFlow::Break(Err(e)),
        };

        // Assembly per the soundness proof: the up-fragment has a leaf for
        // the special edge sc; replace it by the real node c and hang the
        // below-fragments (and leaves for comp_down's covered specials)
        // underneath.
        let c_idx = up_frag.replace_special_leaf(sc, lam_c.to_vec(), chi_c);
        for f in below {
            up_frag.attach_under(c_idx, f);
        }
        for &s in &seps_c.covered_specials {
            up_frag.attach_under(c_idx, Fragment::special_leaf(s, self.arena.get(s).clone()));
        }
        ControlFlow::Break(Ok(up_frag)) // line 39
    }
}

/// Convenience: decision-only variant of [`decompose_basic`].
pub fn decide_basic(hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
    Ok(decompose_basic(hg, k, ctrl)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate_hd_width;

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn single_edge_width_one() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1, 2]]);
        let ctrl = Control::unlimited();
        let d = decompose_basic(&hg, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 1).unwrap();
    }

    #[test]
    fn path_width_one() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
        let ctrl = Control::unlimited();
        let d = decompose_basic(&hg, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 1).unwrap();
    }

    #[test]
    fn triangle_needs_width_two() {
        let hg = cycle(3);
        let ctrl = Control::unlimited();
        assert!(decompose_basic(&hg, 1, &ctrl).unwrap().is_none());
        let d = decompose_basic(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn appendix_b_cycle10_width_two() {
        // The paper's running example (Appendix B): hw(C10) = 2.
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        assert!(decompose_basic(&hg, 1, &ctrl).unwrap().is_none());
        let d = decompose_basic(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn cancellation_propagates() {
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        ctrl.cancel();
        assert!(matches!(
            decompose_basic(&hg, 2, &ctrl),
            Err(Interrupted::Cancelled)
        ));
    }

    #[test]
    fn cycle6_widths() {
        let hg = cycle(6);
        let ctrl = Control::unlimited();
        assert!(decompose_basic(&hg, 1, &ctrl).unwrap().is_none());
        let d = decompose_basic(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }
}
