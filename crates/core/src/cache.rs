//! Sharded, lock-striped memoisation of subproblem verdicts — negative
//! *and* positive.
//!
//! `det-k-decomp` owes much of its practical strength to memoising
//! subproblem results per `(component, connector)` (Gottlob & Samer). The
//! main `log-k-decomp` recursion historically re-explored subproblems from
//! scratch: the same `[U]`-component with the same connector arises under
//! many different λ candidates, and every occurrence repeated the full
//! child-loop enumeration. This module gives the engine the analogous
//! cache, made sound for the parallel engine:
//!
//! * **Both verdicts.** A *negative* entry records "no HD-fragment of
//!   width ≤ k exists" for the resolved subproblem. A *positive* entry
//!   stores the found fragment in arena-independent form
//!   ([`PortableFragment`]: special leaves resolved to vertex sets); on a
//!   hit the fragment is re-interned against the prober's
//!   [`SpecialArena`] by a set-preserving
//!   id-rewrite pass, so a success found in one λc branch is reused
//!   verbatim by every other branch and across recursion levels.
//! * **Exhaustive failures only.** The engine inserts a negative entry
//!   only when a `Decomp` call returns `None` after exhausting its search
//!   space. Branches that were pruned (a sibling won) or interrupted
//!   (timeout / cancellation) propagate errors and are never cached.
//!   Positive entries carry a complete witness and are always safe.
//!
//! The concurrency machinery — resolved keys, commutative-hash
//! borrowed-key probes, 16-shard lock striping, owned-key-on-insert,
//! under-lock dedup — is the shared [`decomp::striped`] core; this module
//! instantiates it with the engine's value type (a `Verdict`) and the
//! byte-budgeted second-chance retention policy
//! ([`ClockEviction`]): instead of freezing
//! inserts at the budget, each shard runs a CLOCK sweep when an insert
//! would overflow — entries touched since the last sweep get a second
//! chance, cold entries are evicted until the new entry fits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use decomp::{ClockEviction, Fragment, InsertOutcome, PortableFragment, StripedTable};
use hypergraph::{EdgeSet, SpecialArena, Subproblem, VertexSet};

/// A memoised verdict: refuted, or solved with a shareable witness.
#[derive(Debug)]
enum Verdict {
    /// No HD-fragment of width ≤ k exists (search space exhausted).
    Negative,
    /// A fragment exists; stored arena-independent. `Arc`-wrapped so a
    /// hit can leave the shard lock before the re-interning clone pass
    /// runs — parallel branches must not convoy behind fragment clones.
    Positive(Arc<PortableFragment>),
}

/// Monotone counters, shared across rayon branches. (Evictions live in
/// the shared table's policy totals.)
#[derive(Debug, Default)]
struct Counters {
    pos_hits: AtomicU64,
    neg_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
    id_rewrites: AtomicU64,
}

/// A point-in-time snapshot of cache state, for stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered with a reusable fragment.
    pub pos_hits: u64,
    /// Lookups answered "known unsolvable".
    pub neg_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the second-chance sweep.
    pub evictions: u64,
    /// Insertions dropped because eviction could not make room.
    pub rejected: u64,
    /// Special-leaf id rewrites performed while re-interning positive
    /// fragments into prober arenas.
    pub id_rewrites: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Estimated bytes currently stored.
    pub bytes: usize,
    /// Configured byte budget (0 = cache disabled).
    pub byte_budget: usize,
}

impl CacheSnapshot {
    /// Total hits, positive and negative.
    pub fn hits(&self) -> u64 {
        self.pos_hits + self.neg_hits
    }
}

/// Result of a borrowed-key probe.
pub enum Probe {
    /// Known unsolvable subproblem.
    Negative,
    /// Known solvable: the stored fragment, re-interned against the
    /// prober's arena.
    Positive(Fragment),
    /// Unknown; carries the key hash so the follow-up insert does not
    /// recompute it.
    Miss(u64),
}

/// The sharded subproblem cache (both verdicts, byte-budgeted, evicting):
/// the engine's instantiation of the shared striped-table core.
pub struct SubproblemCache {
    table: StripedTable<Verdict, ClockEviction>,
    counters: Counters,
}

impl SubproblemCache {
    /// Creates a cache bounded by `byte_budget` bytes; `0` disables it
    /// (every lookup misses, every insert is dropped).
    pub fn new(byte_budget: usize) -> Self {
        SubproblemCache {
            table: StripedTable::new(ClockEviction::new(byte_budget)),
            counters: Counters::default(),
        }
    }

    /// Whether lookups can ever hit.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.table.policy().byte_budget() > 0
    }

    /// Looks up the subproblem without building an owned key. On a
    /// positive hit the stored fragment is re-interned against `arena`
    /// (special-leaf ids rewritten to `sub.specials`).
    pub fn probe(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> Probe {
        if !self.enabled() {
            return Probe::Miss(self.table.hash_key(arena, sub, conn, Some(allowed)));
        }
        // Under the lock: find, mark referenced, and (for positives)
        // clone an `Arc` handle. The fragment re-interning runs unlocked.
        let (hash, hit) = self
            .table
            .probe_with(arena, sub, conn, Some(allowed), |verdict| match verdict {
                Verdict::Negative => None,
                Verdict::Positive(pf) => Some(Arc::clone(pf)),
            });
        match hit {
            Some(None) => {
                self.counters.neg_hits.fetch_add(1, Ordering::Relaxed);
                return Probe::Negative;
            }
            Some(Some(pf)) => {
                if let Some((frag, rewrites)) = pf.instantiate(arena, &sub.specials) {
                    self.counters.pos_hits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .id_rewrites
                        .fetch_add(rewrites, Ordering::Relaxed);
                    return Probe::Positive(frag);
                }
                // A matched key must instantiate: the leaf multiset
                // equals the key's specials equals the probe's.
                debug_assert!(false, "matched positive entry failed to instantiate");
            }
            None => {}
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        Probe::Miss(hash)
    }

    /// Records the subproblem as exhaustively failed.
    pub fn insert_negative(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) {
        if !self.enabled() {
            return;
        }
        decomp::faults::hit("logk/cache/insert");
        self.finish_insert(self.table.insert(
            hash,
            arena,
            sub,
            conn,
            Some(allowed),
            Verdict::Negative,
            0,
        ));
    }

    /// Records a found fragment for the subproblem, resolved to
    /// arena-independent form.
    pub fn insert_positive(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        frag: &Fragment,
    ) {
        if !self.enabled() {
            return;
        }
        decomp::faults::hit("logk/cache/insert");
        let portable = PortableFragment::from_fragment(frag, arena);
        debug_assert_eq!(
            portable.num_special_leaves(),
            sub.specials.len(),
            "a fragment covers each special of its subproblem by one leaf"
        );
        let cost = portable.approx_bytes();
        self.finish_insert(self.table.insert(
            hash,
            arena,
            sub,
            conn,
            Some(allowed),
            Verdict::Positive(Arc::new(portable)),
            cost,
        ));
    }

    fn finish_insert(&self, outcome: InsertOutcome) {
        match outcome {
            InsertOutcome::Inserted => {
                self.counters.inserts.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Rejected => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            }
            // Duplicate key (another branch beat us): keep the incumbent.
            InsertOutcome::Duplicate => {}
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Point-in-time snapshot of counters and footprint.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            pos_hits: self.counters.pos_hits.load(Ordering::Relaxed),
            neg_hits: self.counters.neg_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            evictions: self.table.totals().evictions(),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            id_rewrites: self.counters.id_rewrites.load(Ordering::Relaxed),
            entries: self.table.len(),
            bytes: self.table.totals().bytes(),
            byte_budget: self.table.policy().byte_budget(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::{striped::SHARDS, Fragment, StripedKey};
    use hypergraph::{Edge, Hypergraph, Vertex};

    fn hg4() -> Hypergraph {
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]])
    }

    fn sub_of(hg: &Hypergraph, edges: &[u32]) -> Subproblem {
        let mut sub = Subproblem::empty(hg);
        for &e in edges {
            sub.edges.insert(Edge(e));
        }
        sub
    }

    fn key_cost(
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> usize {
        StripedKey::build(arena, sub, conn, Some(allowed)).approx_bytes()
    }

    fn probe_hash(
        cache: &SubproblemCache,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> u64 {
        match cache.probe(arena, sub, conn, allowed) {
            Probe::Miss(h) => h,
            _ => panic!("expected a miss"),
        }
    }

    #[test]
    fn insert_negative_then_hit() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = SubproblemCache::new(1 << 20);
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0, 1]);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        assert!(matches!(
            cache.probe(&arena, &sub, &conn, &allowed),
            Probe::Negative
        ));
        let other = sub_of(&hg, &[0, 2]);
        assert!(matches!(
            cache.probe(&arena, &other, &conn, &allowed),
            Probe::Miss(_)
        ));
        let snap = cache.snapshot();
        assert_eq!(snap.neg_hits, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
    }

    #[test]
    fn positive_fragment_reinterns_across_arenas() {
        let hg = hg4();
        let n = hg.num_vertices();
        let mut a1 = SpecialArena::new();
        let mut a2 = SpecialArena::new();
        // Same vertex set registered under different ids in two arenas.
        let _pad = a2.push(VertexSet::from_iter(n, [Vertex(3)]));
        let s1 = a1.push(VertexSet::from_iter(n, [Vertex(0), Vertex(2)]));
        let s2 = a2.push(VertexSet::from_iter(n, [Vertex(0), Vertex(2)]));
        let mut sub1 = sub_of(&hg, &[1]);
        sub1.specials.push(s1);
        let mut sub2 = sub_of(&hg, &[1]);
        sub2.specials.push(s2);
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());

        // A fragment for sub1: a root plus the special leaf.
        let mut frag = Fragment::leaf(vec![Edge(1)], hg.union_of_slice(&[Edge(1)]));
        frag.attach_under(0, Fragment::special_leaf(s1, a1.get(s1).clone()));

        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &a1, &sub1, &conn, &allowed);
        cache.insert_positive(h, &a1, &sub1, &conn, &allowed, &frag);

        // The other arena's view of the same resolved subproblem hits and
        // gets the fragment rewritten to *its* id.
        match cache.probe(&a2, &sub2, &conn, &allowed) {
            Probe::Positive(got) => {
                assert_eq!(got.find_special_leaf(s2), Some(1));
            }
            _ => panic!("expected a positive hit"),
        }
        let snap = cache.snapshot();
        assert_eq!(snap.pos_hits, 1);
        assert_eq!(snap.id_rewrites, 1);
    }

    #[test]
    fn clock_eviction_keeps_referenced_entries() {
        // The sweep is per-shard, so the test needs three keys that land
        // in the *same* shard. Shard choice depends on the run's random
        // hash seed; enumerate enough candidate subproblems that the
        // pigeonhole principle guarantees a triple in some shard, and read
        // each key's hash off the `Probe::Miss` it returns.
        let edges: Vec<Vec<u32>> = (0..12u32).map(|i| vec![i, (i + 1) % 12]).collect();
        let hg = Hypergraph::from_edge_lists(&edges);
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());

        let mut candidates: Vec<Subproblem> = Vec::new();
        for i in 0..12u32 {
            for j in i + 1..12 {
                candidates.push(sub_of(&hg, &[i, j]));
            }
        }
        // All candidate keys have identical capacity-derived cost.
        let one_cost = key_cost(&arena, &candidates[0], &conn, &allowed);
        let cache = SubproblemCache::new(2 * one_cost + one_cost / 2);
        let mut by_shard: Vec<Vec<(Subproblem, u64)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for sub in candidates {
            let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
            by_shard[(h as usize) % SHARDS].push((sub, h));
        }
        let triple = by_shard
            .into_iter()
            .find(|v| v.len() >= 3)
            .expect("66 keys over 16 shards must collide");
        let [(hot, h_hot), (cold, h_cold), (new, h_new)] = &triple[..3] else {
            unreachable!()
        };

        cache.insert_negative(*h_hot, &arena, hot, &conn, &allowed);
        cache.insert_negative(*h_cold, &arena, cold, &conn, &allowed);
        // Touch the hot entry so its reference bit is set.
        assert!(matches!(
            cache.probe(&arena, hot, &conn, &allowed),
            Probe::Negative
        ));

        // Third insert overflows the budget: the sweep gives the hot
        // entry its second chance and evicts the cold one.
        cache.insert_negative(*h_new, &arena, new, &conn, &allowed);

        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 1, "sweep must evict the cold entry");
        assert!(
            matches!(cache.probe(&arena, hot, &conn, &allowed), Probe::Negative),
            "referenced entry must survive the sweep"
        );
        assert!(
            matches!(cache.probe(&arena, new, &conn, &allowed), Probe::Negative),
            "new entry must be stored after the sweep"
        );
        assert!(
            matches!(cache.probe(&arena, cold, &conn, &allowed), Probe::Miss(_)),
            "cold entry must be gone"
        );
        assert!(snap.bytes <= 2 * one_cost + one_cost / 2);
    }

    #[test]
    fn overflow_insert_is_rejected_when_nothing_fits() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0]);
        let cost = key_cost(&arena, &sub, &conn, &allowed);
        let cache = SubproblemCache::new(cost / 2); // nothing ever fits
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let snap = cache.snapshot();
        assert_eq!(snap.inserts, 0);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.bytes, 0, "rejected insert must release its bytes");
    }

    #[test]
    fn disabled_cache_never_stores() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = SubproblemCache::new(0);
        assert!(!cache.enabled());
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0]);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        assert!(cache.is_empty());
    }

    #[test]
    fn allowed_set_distinguishes_keys() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let sub = sub_of(&hg, &[0]);
        let conn = hg.vertex_set();
        let all = Arc::new(hg.all_edges());
        let mut restricted = hg.all_edges();
        restricted.remove(Edge(3));
        let restricted = Arc::new(restricted);
        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &arena, &sub, &conn, &all);
        cache.insert_negative(h, &arena, &sub, &conn, &all);
        assert!(matches!(
            cache.probe(&arena, &sub, &conn, &restricted),
            Probe::Miss(_)
        ));
    }

    #[test]
    fn duplicate_inserts_keep_one_entry() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0, 1]);
        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let bytes_once = cache.snapshot().bytes;
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let snap = cache.snapshot();
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.bytes, bytes_once, "duplicate must not leak bytes");
    }
}
