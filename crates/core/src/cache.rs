//! Sharded, lock-striped memoisation of subproblem verdicts — negative
//! *and* positive.
//!
//! `det-k-decomp` owes much of its practical strength to memoising
//! subproblem results per `(component, connector)` (Gottlob & Samer). The
//! main `log-k-decomp` recursion historically re-explored subproblems from
//! scratch: the same `[U]`-component with the same connector arises under
//! many different λ candidates, and every occurrence repeated the full
//! child-loop enumeration. This module gives the engine the analogous
//! cache, made sound for the parallel engine:
//!
//! * **Both verdicts.** A *negative* entry records "no HD-fragment of
//!   width ≤ k exists" for the resolved subproblem. A *positive* entry
//!   stores the found fragment in arena-independent form
//!   ([`PortableFragment`]: special leaves resolved to vertex sets); on a
//!   hit the fragment is re-interned against the prober's
//!   [`SpecialArena`] by a set-preserving id-rewrite pass, so a success
//!   found in one λc branch is reused verbatim by every other branch and
//!   across recursion levels.
//! * **Exhaustive failures only.** The engine inserts a negative entry
//!   only when a `Decomp` call returns `None` after exhausting its search
//!   space. Branches that were pruned (a sibling won) or interrupted
//!   (timeout / cancellation) propagate errors and are never cached.
//!   Positive entries carry a complete witness and are always safe.
//! * **Resolved keys.** Special edges are keyed by *vertex set*, not by
//!   arena id: ids are branch-local, vertex sets are canonical. Stored
//!   keys keep them sorted (the `Ord` on `TypedBitSet` exists for exactly
//!   this); probes match them as a multiset without sorting — see below.
//!   The `allowed` edge set participates in the key because `Decomp`'s
//!   result is relative to the allowed λ alphabet; it is held behind an
//!   [`Arc`] shared with the engine's recursion, so storing a key bumps a
//!   refcount instead of duplicating the set.
//! * **Borrowed-key probes.** Lookups never build an owned key: the probe
//!   hashes the borrowed `(edges, specials, conn, allowed)` directly
//!   (specials are combined commutatively, so no sort buffer is needed)
//!   and walks the hash's bucket comparing stored entries against the
//!   borrowed data. The owned key is built once, on insert — misses and
//!   hits allocate nothing.
//! * **Second-chance eviction.** Instead of freezing inserts at the byte
//!   budget, each shard runs a CLOCK sweep when an insert would overflow:
//!   entries touched since the last sweep get a second chance (their
//!   reference bit is cleared), cold entries are evicted until the new
//!   entry fits. Hot entries survive memory pressure; the first-come set
//!   no longer squats the budget.
//!
//! Lock striping: keys are spread over 16 shards by hash, so parallel
//! branches rarely contend on the same mutex.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use decomp::{specials_multiset_match, Fragment, PortableFragment};
use hypergraph::{EdgeSet, SpecialArena, Subproblem, VertexSet};

const SHARDS: usize = 16;

/// Canonical identity of a `Decomp(H', Conn, A)` call, stored per entry.
#[derive(Debug)]
struct SubKey {
    edges: EdgeSet,
    /// Special edges resolved to vertex sets, sorted canonically.
    specials: Vec<VertexSet>,
    conn: VertexSet,
    /// Shared with the engine's recursion: storing a key is a refcount
    /// bump, not a set clone.
    allowed: Arc<EdgeSet>,
}

impl SubKey {
    fn build(
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> Self {
        let mut specials: Vec<VertexSet> =
            sub.specials.iter().map(|&s| arena.get(s).clone()).collect();
        specials.sort_unstable();
        SubKey {
            edges: sub.edges.clone(),
            specials,
            conn: conn.clone(),
            allowed: Arc::clone(allowed),
        }
    }

    /// Estimated heap footprint in bytes (for the byte budget). The
    /// `allowed` set is physically shared via `Arc` but counted in full —
    /// a conservative over-estimate that can only make eviction earlier,
    /// never let the cache overrun its budget.
    fn approx_bytes(&self) -> usize {
        let set_bytes = |s: &EdgeSet| s.capacity().div_ceil(64) * 8 + 32;
        let vset_bytes = |s: &VertexSet| s.capacity().div_ceil(64) * 8 + 32;
        set_bytes(&self.edges)
            + set_bytes(&self.allowed)
            + vset_bytes(&self.conn)
            + self.specials.iter().map(vset_bytes).sum::<usize>()
            + 48 // slot + Vec header overhead
    }

    /// Whether this stored key describes the borrowed subproblem.
    fn matches(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> bool {
        self.edges == sub.edges
            && self.conn == *conn
            && (Arc::ptr_eq(&self.allowed, allowed) || *self.allowed == **allowed)
            && specials_multiset_match(&self.specials, arena, &sub.specials)
    }
}

/// A memoised verdict: refuted, or solved with a shareable witness.
#[derive(Debug)]
enum Verdict {
    /// No HD-fragment of width ≤ k exists (search space exhausted).
    Negative,
    /// A fragment exists; stored arena-independent. `Arc`-wrapped so a
    /// hit can leave the shard lock before the re-interning clone pass
    /// runs — parallel branches must not convoy behind fragment clones.
    Positive(Arc<PortableFragment>),
}

struct Entry {
    hash: u64,
    key: SubKey,
    verdict: Verdict,
    /// Byte cost charged against the budget when this entry was stored.
    cost: usize,
    /// CLOCK reference bit: set on every hit, cleared (second chance) by
    /// the eviction sweep.
    referenced: bool,
}

/// One lock-striped shard: a slab of entries plus a hash → slot index.
/// The slab gives the CLOCK hand a stable circular order, which a plain
/// `HashMap` iteration cannot.
#[derive(Default)]
struct Shard {
    slots: Vec<Option<Entry>>,
    free: Vec<u32>,
    index: HashMap<u64, Vec<u32>>,
    hand: usize,
}

impl Shard {
    fn find(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> Option<u32> {
        let ids = self.index.get(&hash)?;
        ids.iter().copied().find(|&id| {
            let entry = self.slots[id as usize]
                .as_ref()
                .expect("indexed slots are occupied");
            entry.hash == hash && entry.key.matches(arena, sub, conn, allowed)
        })
    }

    fn remove_slot(&mut self, id: u32) -> Entry {
        let entry = self.slots[id as usize].take().expect("slot occupied");
        if let Some(ids) = self.index.get_mut(&entry.hash) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.index.remove(&entry.hash);
            }
        }
        self.free.push(id);
        entry
    }

    fn place(&mut self, entry: Entry) {
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(entry);
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Some(entry));
                id
            }
        };
        let hash = self.slots[id as usize].as_ref().expect("just placed").hash;
        self.index.entry(hash).or_default().push(id);
    }
}

/// Monotone counters, shared across rayon branches.
#[derive(Debug, Default)]
struct Counters {
    pos_hits: AtomicU64,
    neg_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    id_rewrites: AtomicU64,
}

/// A point-in-time snapshot of cache state, for stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered with a reusable fragment.
    pub pos_hits: u64,
    /// Lookups answered "known unsolvable".
    pub neg_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the second-chance sweep.
    pub evictions: u64,
    /// Insertions dropped because eviction could not make room.
    pub rejected: u64,
    /// Special-leaf id rewrites performed while re-interning positive
    /// fragments into prober arenas.
    pub id_rewrites: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Estimated bytes currently stored.
    pub bytes: usize,
    /// Configured byte budget (0 = cache disabled).
    pub byte_budget: usize,
}

impl CacheSnapshot {
    /// Total hits, positive and negative.
    pub fn hits(&self) -> u64 {
        self.pos_hits + self.neg_hits
    }
}

/// Result of a borrowed-key probe.
pub enum Probe {
    /// Known unsolvable subproblem.
    Negative,
    /// Known solvable: the stored fragment, re-interned against the
    /// prober's arena.
    Positive(Fragment),
    /// Unknown; carries the key hash so the follow-up insert does not
    /// recompute it.
    Miss(u64),
}

/// The sharded subproblem cache (both verdicts, byte-budgeted, evicting).
pub struct SubproblemCache {
    shards: Vec<Mutex<Shard>>,
    hasher: RandomState,
    bytes: AtomicUsize,
    byte_budget: usize,
    counters: Counters,
}

impl SubproblemCache {
    /// Creates a cache bounded by `byte_budget` bytes; `0` disables it
    /// (every lookup misses, every insert is dropped).
    pub fn new(byte_budget: usize) -> Self {
        SubproblemCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hasher: RandomState::new(),
            bytes: AtomicUsize::new(0),
            byte_budget,
            counters: Counters::default(),
        }
    }

    /// Whether lookups can ever hit.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.byte_budget > 0
    }

    /// Hashes the borrowed key parts. Specials are combined with a
    /// commutative `wrapping_add` of per-set hashes, so the canonical
    /// (sorted) stored key and the unsorted branch-local view hash
    /// identically without materialising a sorted buffer.
    fn key_hash(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
    ) -> u64 {
        let mut h = self.hasher.hash_one(&sub.edges);
        h = h.rotate_left(17) ^ self.hasher.hash_one(conn);
        h = h.rotate_left(17) ^ self.hasher.hash_one(allowed);
        let mut sp = 0u64;
        for &s in &sub.specials {
            sp = sp.wrapping_add(self.hasher.hash_one(arena.get(s)));
        }
        h ^ sp
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % SHARDS]
    }

    /// Looks up the subproblem without building an owned key. On a
    /// positive hit the stored fragment is re-interned against `arena`
    /// (special-leaf ids rewritten to `sub.specials`).
    pub fn probe(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> Probe {
        let hash = self.key_hash(arena, sub, conn, allowed);
        if !self.enabled() {
            return Probe::Miss(hash);
        }
        // Under the lock: find, mark referenced, and (for positives)
        // clone an `Arc` handle. The fragment re-interning runs unlocked.
        let hit: Option<Option<Arc<PortableFragment>>> = {
            let mut shard = self.shard(hash).lock().unwrap_or_else(|e| e.into_inner());
            shard.find(hash, arena, sub, conn, allowed).map(|id| {
                let entry = shard.slots[id as usize].as_mut().expect("found slot");
                entry.referenced = true;
                match &entry.verdict {
                    Verdict::Negative => None,
                    Verdict::Positive(pf) => Some(Arc::clone(pf)),
                }
            })
        };
        match hit {
            Some(None) => {
                self.counters.neg_hits.fetch_add(1, Ordering::Relaxed);
                return Probe::Negative;
            }
            Some(Some(pf)) => {
                if let Some((frag, rewrites)) = pf.instantiate(arena, &sub.specials) {
                    self.counters.pos_hits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .id_rewrites
                        .fetch_add(rewrites, Ordering::Relaxed);
                    return Probe::Positive(frag);
                }
                // A matched key must instantiate: the leaf multiset
                // equals the key's specials equals the probe's.
                debug_assert!(false, "matched positive entry failed to instantiate");
            }
            None => {}
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        Probe::Miss(hash)
    }

    /// Records the subproblem as exhaustively failed.
    pub fn insert_negative(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) {
        if !self.enabled() {
            return;
        }
        let key = SubKey::build(arena, sub, conn, allowed);
        self.insert_entry(hash, key, Verdict::Negative, arena, sub, conn, allowed);
    }

    /// Records a found fragment for the subproblem, resolved to
    /// arena-independent form.
    pub fn insert_positive(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
        frag: &Fragment,
    ) {
        if !self.enabled() {
            return;
        }
        let portable = PortableFragment::from_fragment(frag, arena);
        debug_assert_eq!(
            portable.num_special_leaves(),
            sub.specials.len(),
            "a fragment covers each special of its subproblem by one leaf"
        );
        let key = SubKey::build(arena, sub, conn, allowed);
        self.insert_entry(
            hash,
            key,
            Verdict::Positive(Arc::new(portable)),
            arena,
            sub,
            conn,
            allowed,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_entry(
        &self,
        hash: u64,
        key: SubKey,
        verdict: Verdict,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) {
        let cost = key.approx_bytes()
            + match &verdict {
                Verdict::Negative => 0,
                Verdict::Positive(pf) => pf.approx_bytes(),
            };
        let mut shard = self.shard(hash).lock().unwrap_or_else(|e| e.into_inner());
        // Duplicate key (another branch beat us): keep the incumbent.
        if shard.find(hash, arena, sub, conn, allowed).is_some() {
            return;
        }
        // Reserve-then-sweep keeps the cap exact under concurrent inserts;
        // the CLOCK sweep frees cold entries of this shard until the new
        // entry fits (hash striping is uniform, so per-shard pressure
        // tracks global pressure).
        let prev = self.bytes.fetch_add(cost, Ordering::Relaxed);
        if prev + cost > self.byte_budget {
            self.sweep(&mut shard);
            if self.bytes.load(Ordering::Relaxed) > self.byte_budget {
                self.bytes.fetch_sub(cost, Ordering::Relaxed);
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        shard.place(Entry {
            hash,
            key,
            verdict,
            cost,
            referenced: false,
        });
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Second-chance (CLOCK) sweep over one shard: referenced entries are
    /// spared once (bit cleared), unreferenced entries are evicted, until
    /// the global footprint fits the budget or two full revolutions have
    /// given every entry its chance.
    fn sweep(&self, shard: &mut Shard) {
        let n = shard.slots.len();
        let mut steps = 0usize;
        while steps < 2 * n && self.bytes.load(Ordering::Relaxed) > self.byte_budget {
            let i = shard.hand % n;
            shard.hand = (shard.hand + 1) % n.max(1);
            steps += 1;
            let Some(entry) = shard.slots[i].as_mut() else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                continue;
            }
            let evicted = shard.remove_slot(i as u32);
            self.bytes.fetch_sub(evicted.cost, Ordering::Relaxed);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .slots
                    .iter()
                    .flatten()
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot of counters and footprint.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            pos_hits: self.counters.pos_hits.load(Ordering::Relaxed),
            neg_hits: self.counters.neg_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            id_rewrites: self.counters.id_rewrites.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes.load(Ordering::Relaxed),
            byte_budget: self.byte_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::Fragment;
    use hypergraph::{Edge, Hypergraph, Vertex};

    fn hg4() -> Hypergraph {
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]])
    }

    fn sub_of(hg: &Hypergraph, edges: &[u32]) -> Subproblem {
        let mut sub = Subproblem::empty(hg);
        for &e in edges {
            sub.edges.insert(Edge(e));
        }
        sub
    }

    fn probe_hash(
        cache: &SubproblemCache,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &Arc<EdgeSet>,
    ) -> u64 {
        match cache.probe(arena, sub, conn, allowed) {
            Probe::Miss(h) => h,
            _ => panic!("expected a miss"),
        }
    }

    #[test]
    fn insert_negative_then_hit() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = SubproblemCache::new(1 << 20);
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0, 1]);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        assert!(matches!(
            cache.probe(&arena, &sub, &conn, &allowed),
            Probe::Negative
        ));
        let other = sub_of(&hg, &[0, 2]);
        assert!(matches!(
            cache.probe(&arena, &other, &conn, &allowed),
            Probe::Miss(_)
        ));
        let snap = cache.snapshot();
        assert_eq!(snap.neg_hits, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
    }

    #[test]
    fn positive_fragment_reinterns_across_arenas() {
        let hg = hg4();
        let n = hg.num_vertices();
        let mut a1 = SpecialArena::new();
        let mut a2 = SpecialArena::new();
        // Same vertex set registered under different ids in two arenas.
        let _pad = a2.push(VertexSet::from_iter(n, [Vertex(3)]));
        let s1 = a1.push(VertexSet::from_iter(n, [Vertex(0), Vertex(2)]));
        let s2 = a2.push(VertexSet::from_iter(n, [Vertex(0), Vertex(2)]));
        let mut sub1 = sub_of(&hg, &[1]);
        sub1.specials.push(s1);
        let mut sub2 = sub_of(&hg, &[1]);
        sub2.specials.push(s2);
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());

        // A fragment for sub1: a root plus the special leaf.
        let mut frag = Fragment::leaf(vec![Edge(1)], hg.union_of_slice(&[Edge(1)]));
        frag.attach_under(0, Fragment::special_leaf(s1, a1.get(s1).clone()));

        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &a1, &sub1, &conn, &allowed);
        cache.insert_positive(h, &a1, &sub1, &conn, &allowed, &frag);

        // The other arena's view of the same resolved subproblem hits and
        // gets the fragment rewritten to *its* id.
        match cache.probe(&a2, &sub2, &conn, &allowed) {
            Probe::Positive(got) => {
                assert_eq!(got.find_special_leaf(s2), Some(1));
            }
            _ => panic!("expected a positive hit"),
        }
        let snap = cache.snapshot();
        assert_eq!(snap.pos_hits, 1);
        assert_eq!(snap.id_rewrites, 1);
    }

    #[test]
    fn clock_eviction_keeps_referenced_entries() {
        // The sweep is per-shard, so the test needs three keys that land
        // in the *same* shard. Shard choice depends on the run's random
        // hash seed; enumerate enough candidate subproblems that the
        // pigeonhole principle guarantees a triple in some shard, and read
        // each key's hash off the `Probe::Miss` it returns.
        let edges: Vec<Vec<u32>> = (0..12u32).map(|i| vec![i, (i + 1) % 12]).collect();
        let hg = Hypergraph::from_edge_lists(&edges);
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());

        let mut candidates: Vec<Subproblem> = Vec::new();
        for i in 0..12u32 {
            for j in i + 1..12 {
                candidates.push(sub_of(&hg, &[i, j]));
            }
        }
        // All candidate keys have identical capacity-derived cost.
        let one_cost = SubKey::build(&arena, &candidates[0], &conn, &allowed).approx_bytes();
        let cache = SubproblemCache::new(2 * one_cost + one_cost / 2);
        let mut by_shard: Vec<Vec<(Subproblem, u64)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for sub in candidates {
            let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
            by_shard[(h as usize) % SHARDS].push((sub, h));
        }
        let triple = by_shard
            .into_iter()
            .find(|v| v.len() >= 3)
            .expect("66 keys over 16 shards must collide");
        let [(hot, h_hot), (cold, h_cold), (new, h_new)] = &triple[..3] else {
            unreachable!()
        };

        cache.insert_negative(*h_hot, &arena, hot, &conn, &allowed);
        cache.insert_negative(*h_cold, &arena, cold, &conn, &allowed);
        // Touch the hot entry so its reference bit is set.
        assert!(matches!(
            cache.probe(&arena, hot, &conn, &allowed),
            Probe::Negative
        ));

        // Third insert overflows the budget: the sweep gives the hot
        // entry its second chance and evicts the cold one.
        cache.insert_negative(*h_new, &arena, new, &conn, &allowed);

        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 1, "sweep must evict the cold entry");
        assert!(
            matches!(cache.probe(&arena, hot, &conn, &allowed), Probe::Negative),
            "referenced entry must survive the sweep"
        );
        assert!(
            matches!(cache.probe(&arena, new, &conn, &allowed), Probe::Negative),
            "new entry must be stored after the sweep"
        );
        assert!(
            matches!(cache.probe(&arena, cold, &conn, &allowed), Probe::Miss(_)),
            "cold entry must be gone"
        );
        assert!(snap.bytes <= 2 * one_cost + one_cost / 2);
    }

    #[test]
    fn overflow_insert_is_rejected_when_nothing_fits() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0]);
        let cost = SubKey::build(&arena, &sub, &conn, &allowed).approx_bytes();
        let cache = SubproblemCache::new(cost / 2); // nothing ever fits
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let snap = cache.snapshot();
        assert_eq!(snap.inserts, 0);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.bytes, 0, "rejected insert must release its bytes");
    }

    #[test]
    fn disabled_cache_never_stores() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = SubproblemCache::new(0);
        assert!(!cache.enabled());
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0]);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        assert!(cache.is_empty());
    }

    #[test]
    fn allowed_set_distinguishes_keys() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let sub = sub_of(&hg, &[0]);
        let conn = hg.vertex_set();
        let all = Arc::new(hg.all_edges());
        let mut restricted = hg.all_edges();
        restricted.remove(Edge(3));
        let restricted = Arc::new(restricted);
        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &arena, &sub, &conn, &all);
        cache.insert_negative(h, &arena, &sub, &conn, &all);
        assert!(matches!(
            cache.probe(&arena, &sub, &conn, &restricted),
            Probe::Miss(_)
        ));
    }

    #[test]
    fn duplicate_inserts_keep_one_entry() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let allowed = Arc::new(hg.all_edges());
        let sub = sub_of(&hg, &[0, 1]);
        let cache = SubproblemCache::new(1 << 20);
        let h = probe_hash(&cache, &arena, &sub, &conn, &allowed);
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let bytes_once = cache.snapshot().bytes;
        cache.insert_negative(h, &arena, &sub, &conn, &allowed);
        let snap = cache.snapshot();
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.bytes, bytes_once, "duplicate must not leak bytes");
    }
}
