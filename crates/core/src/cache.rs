//! Sharded, lock-striped memoisation of *negative* subproblems.
//!
//! `det-k-decomp` owes much of its practical strength to memoising
//! subproblem results per `(component, connector)` (Gottlob & Samer). The
//! main `log-k-decomp` recursion historically re-explored failed
//! subproblems from scratch: the same `[U]`-component with the same
//! connector arises under many different λ candidates, and every
//! occurrence repeated the full child-loop enumeration. This module gives
//! the engine the analogous cache, made sound for the parallel engine:
//!
//! * **Negative results only.** A positive result is a [`Fragment`] whose
//!   special-leaf ids are only meaningful relative to the arena state of
//!   the branch that produced it, so positives cannot be shared across
//!   rayon branches. A *negative* result ("no HD-fragment of width ≤ k
//!   exists") depends only on the resolved vertex sets, which the key
//!   captures — so negatives are shareable and re-derivable nowhere.
//! * **Exhaustive failures only.** The engine inserts a key only when a
//!   `Decomp` call returns `None` after exhausting its search space.
//!   Branches that were pruned (a sibling won) or interrupted (timeout /
//!   cancellation) propagate errors instead and are never cached.
//! * **Resolved keys.** Special edges are stored by *vertex set*, not by
//!   arena id: ids are branch-local, vertex sets are canonical. The
//!   resolved sets are sorted (the `Ord` on `TypedBitSet` exists for
//!   exactly this) so equal subproblems hash equally regardless of
//!   discovery order. The `allowed` edge set participates in the key
//!   because `Decomp`'s result is relative to the allowed λ alphabet.
//! * **Byte budget.** Mirroring `detk`'s `cache_cap` discipline, the cache
//!   stops inserting (but keeps serving hits) once its estimated footprint
//!   exceeds the configured budget.
//!
//! Lock striping: keys are spread over 16 shards by hash, so parallel
//! branches rarely contend on the same mutex.

use std::collections::HashSet;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hypergraph::{EdgeSet, SpecialArena, Subproblem, VertexSet};

const SHARDS: usize = 16;

/// Canonical identity of a `Decomp(H', Conn, A)` call.
#[derive(PartialEq, Eq, Hash, Debug)]
pub struct NegKey {
    edges: EdgeSet,
    /// Special edges resolved to vertex sets, sorted canonically.
    specials: Vec<VertexSet>,
    conn: VertexSet,
    allowed: EdgeSet,
}

impl NegKey {
    /// Builds the canonical key for `(sub, conn, allowed)`, resolving
    /// special-edge ids through `arena`.
    pub fn build(
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
    ) -> Self {
        let mut specials: Vec<VertexSet> =
            sub.specials.iter().map(|&s| arena.get(s).clone()).collect();
        specials.sort_unstable();
        NegKey {
            edges: sub.edges.clone(),
            specials,
            conn: conn.clone(),
            allowed: allowed.clone(),
        }
    }

    /// Estimated heap footprint in bytes (for the byte budget).
    fn approx_bytes(&self) -> usize {
        let set_bytes = |s: &EdgeSet| s.capacity().div_ceil(64) * 8 + 32;
        let vset_bytes = |s: &VertexSet| s.capacity().div_ceil(64) * 8 + 32;
        set_bytes(&self.edges)
            + set_bytes(&self.allowed)
            + vset_bytes(&self.conn)
            + self.specials.iter().map(vset_bytes).sum::<usize>()
            + 48 // HashSet slot + Vec header overhead
    }
}

/// Monotone hit/miss/insert counters, shared across rayon branches.
#[derive(Debug, Default)]
pub struct NegCacheCounters {
    /// Lookups answered positively (subproblem known unsolvable).
    pub hits: AtomicU64,
    /// Lookups that found nothing.
    pub misses: AtomicU64,
    /// Keys inserted.
    pub inserts: AtomicU64,
    /// Insertions skipped because the byte budget was exhausted.
    pub rejected: AtomicU64,
}

/// A point-in-time snapshot of cache state, for stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NegCacheSnapshot {
    /// Lookups answered positively.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Keys inserted.
    pub inserts: u64,
    /// Insertions dropped over budget.
    pub rejected: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Estimated bytes currently stored.
    pub bytes: usize,
    /// Configured byte budget (0 = cache disabled).
    pub byte_budget: usize,
}

/// The sharded negative-subproblem cache.
pub struct NegCache {
    shards: Vec<Mutex<HashSet<NegKey>>>,
    hasher: RandomState,
    bytes: AtomicUsize,
    byte_budget: usize,
    counters: NegCacheCounters,
}

impl NegCache {
    /// Creates a cache bounded by `byte_budget` bytes; `0` disables it
    /// (every lookup misses, every insert is dropped).
    pub fn new(byte_budget: usize) -> Self {
        NegCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
            hasher: RandomState::new(),
            bytes: AtomicUsize::new(0),
            byte_budget,
            counters: NegCacheCounters::default(),
        }
    }

    /// Whether lookups can ever hit.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.byte_budget > 0
    }

    fn shard(&self, key: &NegKey) -> &Mutex<HashSet<NegKey>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Returns `true` iff `key` is a known-unsolvable subproblem.
    pub fn contains(&self, key: &NegKey) -> bool {
        let hit = self
            .shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(key);
        let counter = if hit {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Records `key` as exhaustively failed, unless the byte budget is
    /// spent.
    pub fn insert(&self, key: NegKey) {
        let cost = key.approx_bytes();
        // Reserve-then-rollback keeps the cap exact under concurrent
        // inserts (a plain load-check would let racing branches all pass).
        let prev = self.bytes.fetch_add(cost, Ordering::Relaxed);
        if prev + cost > self.byte_budget {
            self.bytes.fetch_sub(cost, Ordering::Relaxed);
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let inserted = self
            .shard(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key);
        if inserted {
            self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        } else {
            // Duplicate key (another branch beat us): release the bytes.
            self.bytes.fetch_sub(cost, Ordering::Relaxed);
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot of counters and footprint.
    pub fn snapshot(&self) -> NegCacheSnapshot {
        NegCacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes.load(Ordering::Relaxed),
            byte_budget: self.byte_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{Hypergraph, Vertex};

    fn key_for(hg: &Hypergraph, arena: &SpecialArena, edges: &[u32]) -> NegKey {
        let mut sub = Subproblem::empty(hg);
        for &e in edges {
            sub.edges.insert(hypergraph::Edge(e));
        }
        NegKey::build(arena, &sub, &hg.vertex_set(), &hg.all_edges())
    }

    fn hg4() -> Hypergraph {
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]])
    }

    #[test]
    fn insert_then_hit() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = NegCache::new(1 << 20);
        let k = key_for(&hg, &arena, &[0, 1]);
        assert!(!cache.contains(&k));
        cache.insert(key_for(&hg, &arena, &[0, 1]));
        assert!(cache.contains(&k));
        assert!(!cache.contains(&key_for(&hg, &arena, &[0, 2])));
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
    }

    #[test]
    fn specials_resolve_by_vertex_set_not_id() {
        let hg = hg4();
        let mut a1 = SpecialArena::new();
        let mut a2 = SpecialArena::new();
        // Same vertex set registered under different ids in two arenas.
        let _pad = a2.push(VertexSet::from_iter(4, [Vertex(3)]));
        let s1 = a1.push(VertexSet::from_iter(4, [Vertex(0), Vertex(2)]));
        let s2 = a2.push(VertexSet::from_iter(4, [Vertex(0), Vertex(2)]));
        let mut sub1 = Subproblem::empty(&hg);
        sub1.edges.insert(hypergraph::Edge(1));
        sub1.specials.push(s1);
        let mut sub2 = Subproblem::empty(&hg);
        sub2.edges.insert(hypergraph::Edge(1));
        sub2.specials.push(s2);
        let conn = hg.vertex_set();
        let allowed = hg.all_edges();
        let k1 = NegKey::build(&a1, &sub1, &conn, &allowed);
        let k2 = NegKey::build(&a2, &sub2, &conn, &allowed);
        assert_eq!(k1, k2);
    }

    #[test]
    fn byte_budget_caps_inserts() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let one_key_cost = key_for(&hg, &arena, &[0]).approx_bytes();
        let cache = NegCache::new(one_key_cost + 1);
        cache.insert(key_for(&hg, &arena, &[0]));
        cache.insert(key_for(&hg, &arena, &[1]));
        let snap = cache.snapshot();
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let cache = NegCache::new(0);
        assert!(!cache.enabled());
        cache.insert(key_for(&hg, &arena, &[0]));
        assert!(cache.is_empty());
    }

    #[test]
    fn allowed_set_distinguishes_keys() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let mut sub = Subproblem::empty(&hg);
        sub.edges.insert(hypergraph::Edge(0));
        let conn = hg.vertex_set();
        let all = hg.all_edges();
        let mut restricted = hg.all_edges();
        restricted.remove(hypergraph::Edge(3));
        let k_all = NegKey::build(&arena, &sub, &conn, &all);
        let k_res = NegKey::build(&arena, &sub, &conn, &restricted);
        assert_ne!(k_all, k_res);
        let cache = NegCache::new(1 << 20);
        cache.insert(k_all);
        assert!(!cache.contains(&k_res));
    }
}
