//! Unit and differential tests for the optimised / parallel / hybrid
//! engines against the Algorithm 1 oracle.

use decomp::{validate_hd_width, Control};
use hypergraph::Hypergraph;

use crate::engine::{HybridConfig, HybridMetric};
use crate::solver::LogK;

fn cycle(n: u32) -> Hypergraph {
    let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    Hypergraph::from_edge_lists(&edges)
}

fn grid(rows: u32, cols: u32) -> Hypergraph {
    // Binary edges of a rows×cols grid graph.
    let v = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(vec![v(r, c), v(r, c + 1)]);
            }
            if r + 1 < rows {
                edges.push(vec![v(r, c), v(r + 1, c)]);
            }
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// Small deterministic pseudo-random hypergraphs (LCG; no external deps).
fn random_hypergraph(seed: u64, n: u32, m: usize, max_arity: u32) -> Hypergraph {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move |bound: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % bound
    };
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let arity = 2 + next(max_arity - 1);
        let mut edge: Vec<u32> = (0..arity).map(|_| next(n)).collect();
        edge.sort_unstable();
        edge.dedup();
        if edge.len() < 2 {
            edge.push((edge[0] + 1) % n);
        }
        edges.push(edge);
    }
    Hypergraph::from_edge_lists(&edges)
}

#[test]
fn optimized_matches_oracle_on_structured_instances() {
    let ctrl = Control::unlimited();
    let oracle = LogK::basic();
    let fast = LogK::sequential();
    for hg in [cycle(4), cycle(7), cycle(10), grid(2, 3), grid(3, 3)] {
        for k in 1..=3usize {
            let want = oracle.decide(&hg, k, &ctrl).unwrap();
            let got = fast.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(want, got.is_some(), "k={k} |E|={}", hg.num_edges());
            if let Some(d) = got {
                validate_hd_width(&hg, &d, k).unwrap();
            }
        }
    }
}

#[test]
fn optimized_matches_oracle_on_random_instances() {
    let ctrl = Control::unlimited();
    let oracle = LogK::basic();
    let fast = LogK::sequential();
    for seed in 0..20u64 {
        let hg = random_hypergraph(seed, 8, 7, 4);
        for k in 1..=2usize {
            let want = oracle.decide(&hg, k, &ctrl).unwrap();
            let got = fast.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(want, got.is_some(), "seed={seed} k={k}\n{:?}", hg);
            if let Some(d) = got {
                validate_hd_width(&hg, &d, k).unwrap();
            }
        }
    }
}

#[test]
fn root_fallthrough_agrees_with_printed_algorithm() {
    // Differential evidence for the Algorithm 2 pseudo-code: enabling the
    // extra pair-search after a failed root attempt must not change any
    // decision (it could only mask incompleteness of the printed variant).
    let ctrl = Control::unlimited();
    let printed = LogK::sequential();
    let fallthrough = LogK {
        root_fallthrough: true,
        ..LogK::sequential()
    };
    for seed in 0..25u64 {
        let hg = random_hypergraph(seed.wrapping_add(100), 9, 8, 4);
        for k in 1..=2usize {
            let a = printed.decide(&hg, k, &ctrl).unwrap();
            let b = fallthrough.decide(&hg, k, &ctrl).unwrap();
            assert_eq!(a, b, "seed={seed} k={k}");
        }
    }
}

#[test]
fn detk_agrees_with_logk() {
    let ctrl = Control::unlimited();
    let fast = LogK::sequential();
    for seed in 0..20u64 {
        let hg = random_hypergraph(seed.wrapping_add(500), 10, 9, 4);
        for k in 1..=3usize {
            let a = fast.decide(&hg, k, &ctrl).unwrap();
            let b = detk::decide_detk(&hg, k, &ctrl).unwrap();
            assert_eq!(a, b, "seed={seed} k={k}\n{:?}", hg);
        }
    }
}

#[test]
fn parallel_matches_sequential() {
    let ctrl = Control::unlimited();
    let seq = LogK::sequential();
    let par = LogK::parallel(2);
    for seed in 0..10u64 {
        let hg = random_hypergraph(seed.wrapping_add(900), 10, 10, 4);
        for k in 1..=3usize {
            let a = seq.decide(&hg, k, &ctrl).unwrap();
            let got = par.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(a, got.is_some(), "seed={seed} k={k}");
            if let Some(d) = got {
                validate_hd_width(&hg, &d, k).unwrap();
            }
        }
    }
}

#[test]
fn hybrid_matches_sequential() {
    let ctrl = Control::unlimited();
    let seq = LogK::sequential();
    for metric in [HybridMetric::EdgeCount, HybridMetric::WeightedCount] {
        let hybrid = LogK::sequential().with_hybrid(Some(HybridConfig {
            metric,
            threshold: 6.0,
        }));
        for seed in 0..10u64 {
            let hg = random_hypergraph(seed.wrapping_add(1300), 10, 10, 4);
            for k in 1..=3usize {
                let a = seq.decide(&hg, k, &ctrl).unwrap();
                let got = hybrid.decompose(&hg, k, &ctrl).unwrap();
                assert_eq!(a, got.is_some(), "seed={seed} k={k} metric={metric:?}");
                if let Some(d) = got {
                    validate_hd_width(&hg, &d, k).unwrap();
                }
            }
        }
    }
}

#[test]
fn minimal_width_certifies_cycles() {
    let ctrl = Control::unlimited();
    let solver = LogK::sequential();
    let (w, d) = solver.minimal_width(&cycle(10), 5, &ctrl).unwrap().unwrap();
    assert_eq!(w, 2);
    validate_hd_width(&cycle(10), &d, 2).unwrap();

    let path = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
    let (w, _) = solver.minimal_width(&path, 5, &ctrl).unwrap().unwrap();
    assert_eq!(w, 1);
}

#[test]
fn grid3x3_width_matches_oracle_upper() {
    // hw of the 3×3 grid (binary edges) is 2.
    let ctrl = Control::unlimited();
    let hg = grid(3, 3);
    let solver = LogK::sequential();
    let (w, d) = solver.minimal_width(&hg, 4, &ctrl).unwrap().unwrap();
    assert_eq!(w, 2);
    validate_hd_width(&hg, &d, w).unwrap();
}

#[test]
fn parallel_solve_is_interruptible() {
    let hg = random_hypergraph(7, 14, 16, 4);
    let ctrl = Control::with_timeout(std::time::Duration::from_millis(0));
    let par = LogK::parallel(2);
    let r = par.decompose(&hg, 3, &ctrl);
    assert!(r.is_err());
}

#[test]
fn logarithmic_recursion_yields_shallow_fragments_on_long_cycles() {
    // Not a direct recursion-depth probe, but the balanced separation shows
    // up as bounded fragment reuse: solving a large cycle must terminate
    // quickly at k=2 where det-k-style top-down would walk the whole cycle.
    let ctrl = Control::unlimited();
    let hg = cycle(40);
    let d = LogK::sequential()
        .decompose(&hg, 2, &ctrl)
        .unwrap()
        .unwrap();
    validate_hd_width(&hg, &d, 2).unwrap();
}

#[test]
fn disconnected_hypergraphs_decompose() {
    // Two disjoint triangles plus an isolated pendant edge: the engine
    // must stitch per-component fragments under one root.
    let hg = Hypergraph::from_edge_lists(&[
        vec![0, 1],
        vec![1, 2],
        vec![2, 0],
        vec![10, 11],
        vec![11, 12],
        vec![12, 10],
        vec![20, 21],
    ]);
    let ctrl = Control::unlimited();
    for solver in [LogK::sequential(), LogK::parallel(2), LogK::hybrid(2)] {
        assert!(solver.decompose(&hg, 1, &ctrl).unwrap().is_none());
        let d = solver.decompose(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }
}

#[test]
fn duplicate_and_subsumed_edges_are_handled() {
    let hg = Hypergraph::from_edge_lists(&[
        vec![0, 1, 2],
        vec![0, 1, 2], // duplicate
        vec![1, 2],    // subsumed
        vec![2, 3],
        vec![3, 0],
    ]);
    let ctrl = Control::unlimited();
    let (w, d) = LogK::sequential()
        .minimal_width(&hg, 4, &ctrl)
        .unwrap()
        .unwrap();
    validate_hd_width(&hg, &d, w).unwrap();
    // Reduction must not change the width.
    let (reduced, _) = hg.reduced();
    let (w2, _) = LogK::sequential()
        .minimal_width(&reduced, 4, &ctrl)
        .unwrap()
        .unwrap();
    assert_eq!(w, w2);
}

#[test]
fn single_vertex_edges() {
    // Unary edges (constants in CQs) are legal hyperedges.
    let hg = Hypergraph::from_edge_lists(&[vec![0], vec![0, 1], vec![1]]);
    let ctrl = Control::unlimited();
    let (w, d) = LogK::hybrid(1)
        .minimal_width(&hg, 3, &ctrl)
        .unwrap()
        .unwrap();
    assert_eq!(w, 1);
    validate_hd_width(&hg, &d, 1).unwrap();
}

#[test]
fn wide_hyperedges_beat_binary_width() {
    // One big edge covering a clique's vertices lowers the width to 1.
    let mut edges: Vec<Vec<u32>> = Vec::new();
    for a in 0..5u32 {
        for b in a + 1..5 {
            edges.push(vec![a, b]);
        }
    }
    edges.push((0..5).collect());
    let hg = Hypergraph::from_edge_lists(&edges);
    let ctrl = Control::unlimited();
    let (w, d) = LogK::sequential()
        .minimal_width(&hg, 3, &ctrl)
        .unwrap()
        .unwrap();
    assert_eq!(w, 1);
    validate_hd_width(&hg, &d, 1).unwrap();
}

#[test]
fn optimized_matches_oracle_on_larger_random_instances() {
    // Extra differential confidence for the printed Algorithm 2 structure
    // (top-level root-mode-only search): wider random instances.
    let ctrl = Control::unlimited();
    let oracle = LogK::basic();
    let fast = LogK::sequential();
    for seed in 0..12u64 {
        let hg = random_hypergraph(seed.wrapping_add(4000), 10, 9, 3);
        for k in 1..=2usize {
            let want = oracle.decide(&hg, k, &ctrl).unwrap();
            let got = fast.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(want, got.is_some(), "seed={seed} k={k}\n{hg:?}");
            if let Some(d) = got {
                validate_hd_width(&hg, &d, k).unwrap();
            }
        }
    }
}
