//! Speculative racing width sweep (the parallel sibling of
//! [`width_bounds_with`]).
//!
//! [`width_bounds_with`] probes `k = 1, 2, …` strictly in order: each
//! width waits for its predecessor even when the verdicts are
//! independent. [`width_bounds_racing`] keeps a window of `speculation`
//! widths in flight at once on their own probe threads, each under its
//! own [`Control::child`] of the sweep control, and lets verdicts land
//! **out of order**:
//!
//! * a *witness* at `k` proves `hw(H) ≤ k`, so every in-flight probe at
//!   a width `≥ k` is now redundant and is cancelled immediately;
//! * a *refutation* at `k` proves `hw(H) > k` — and, because a
//!   decomposition of width `≤ j` is also one of width `≤ k` for any
//!   `j ≤ k`, it proves every smaller width refuted too. Probes still
//!   running below `k` are cancelled and the lower bound jumps straight
//!   to `k + 1`, even across widths whose own probes timed out;
//! * a probe that was *cancelled* (by a neighbour's verdict) or that hit
//!   its per-width sub-deadline decides **nothing**: it never advances
//!   the lower bound (the internal `SweepLedger` records it as
//!   undecided — the accounting is unit-tested precisely because conflating
//!   `Timeout`/`Cancelled` with a definitive `false` would corrupt the
//!   certified bounds).
//!
//! The wall-clock win on a sweep is overlap: while one hard width burns
//! its [`per-width slice`](width_bounds_racing#arguments), its
//! neighbours' (often much cheaper) verdicts land concurrently instead
//! of queueing behind it. The final [`WidthBounds`] is exactly as
//! certified as the sequential sweep's — when both run uninterrupted
//! they prove identical bounds (`tests/race_differential.rs` pins this
//! across worker counts).
//!
//! [`width_bounds_with`]: crate::solver::width_bounds_with

use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use decomp::{Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;

use crate::solver::{width_bounds_with, LogK, WidthBounds};

/// Counters of a racing sweep (or an algorithm-portfolio race): how much
/// speculation happened and how much of it was cut short or wasted.
/// Zero for the sequential fast path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Probes (or portfolio racers) launched.
    pub probes: u64,
    /// Probes cancelled before producing a verdict because a
    /// neighbour's verdict made them redundant (a witness below their
    /// width, a refutation above it, or the race resolving outright).
    pub race_cancels: u64,
    /// Probes that ran to a verdict the race did not use — a witness at
    /// a width the sweep had already beaten, a refutation already
    /// implied by a higher one, or a portfolio racer finishing after
    /// the verdict was in.
    pub speculative_wasted: u64,
}

impl RaceStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RaceStats) {
        self.probes += other.probes;
        self.race_cancels += other.race_cancels;
        self.speculative_wasted += other.speculative_wasted;
    }
}

/// What a finished probe reported to the coordinator.
enum ProbeMsg {
    Verdict(Result<Option<Decomposition>, Interrupted>),
    /// The probe panicked; the payload was contained on the probe
    /// thread (the sweep survives and the width stays undecided).
    Panicked,
}

/// Pure accounting core of the racing sweep: verdicts in, certified
/// [`WidthBounds`] out. Kept free of threads so the out-of-order
/// bookkeeping — in particular that cancellations and timeouts are
/// **never** treated as refutations — is directly unit-testable.
#[derive(Debug)]
pub(crate) struct SweepLedger {
    k_max: usize,
    /// Highest width definitively refuted (`0` = none). By width
    /// monotonicity every width `≤ refuted_max` is refuted with it, so
    /// `proven_lower = refuted_max + 1` stays exact even when verdicts
    /// land out of order across undecided (timed-out) widths.
    refuted_max: usize,
    best_upper: Option<usize>,
    witness: Option<Decomposition>,
    interrupted: Option<Interrupted>,
    /// Next width not yet handed to a probe.
    next: usize,
    /// No further probes (overall control fired, or bounds met).
    halted: bool,
    stats: RaceStats,
}

impl SweepLedger {
    pub(crate) fn new(k_max: usize) -> Self {
        SweepLedger {
            k_max,
            refuted_max: 0,
            best_upper: None,
            witness: None,
            interrupted: None,
            next: 1,
            halted: false,
            stats: RaceStats::default(),
        }
    }

    /// `hw(H) ≥ proven_lower` from the definitive refutations so far.
    pub(crate) fn proven_lower(&self) -> usize {
        self.refuted_max + 1
    }

    /// The bounds met: the width is certified optimal.
    pub(crate) fn exact(&self) -> bool {
        self.best_upper == Some(self.proven_lower())
    }

    /// Stop launching probes (the overall control fired, or the caller
    /// decided the race is over).
    pub(crate) fn halt(&mut self) {
        self.halted = true;
    }

    /// Claims the next width worth probing, if any: the lowest width not
    /// yet launched, not already refuted by monotonicity, and strictly
    /// below the best witnessed upper bound.
    pub(crate) fn next_probe(&mut self) -> Option<usize> {
        while !self.halted && self.next <= self.k_max {
            let k = self.next;
            self.next += 1;
            if k <= self.refuted_max {
                continue; // already refuted by a higher verdict
            }
            if self.best_upper.is_some_and(|u| k >= u) {
                self.halt(); // nothing above the witness is worth deciding
                return None;
            }
            self.stats.probes += 1;
            return Some(k);
        }
        None
    }

    /// Definitive witness at `k`. Returns `true` when it tightened the
    /// upper bound (callers cancel in-flight probes at widths `≥ k`).
    pub(crate) fn witnessed(&mut self, k: usize, d: Decomposition) -> bool {
        debug_assert!(k > self.refuted_max, "witness at a refuted width");
        if self.best_upper.is_none_or(|u| k < u) {
            self.best_upper = Some(k);
            self.witness = Some(d);
            true
        } else {
            self.stats.speculative_wasted += 1;
            false
        }
    }

    /// Definitive refutation at `k`: no HD of width `≤ k` exists, hence
    /// none of width `≤ j` for any `j ≤ k`. Returns the new
    /// `proven_lower` when the bound advanced (callers cancel in-flight
    /// probes below it).
    pub(crate) fn refuted(&mut self, k: usize) -> Option<usize> {
        debug_assert!(
            self.best_upper.is_none_or(|u| k < u),
            "refutation at a witnessed width"
        );
        if k <= self.refuted_max {
            self.stats.speculative_wasted += 1;
            return None;
        }
        self.refuted_max = k;
        Some(self.proven_lower())
    }

    /// The probe at `k` was cancelled by the race itself (a neighbour's
    /// verdict). Decides nothing about width `k` — in particular it is
    /// **not** a refutation and never advances the lower bound.
    pub(crate) fn cancelled(&mut self, _k: usize) {
        self.stats.race_cancels += 1;
    }

    /// The probe at `k` was interrupted on its own (per-width
    /// sub-deadline, or the overall control firing). Undecided: the
    /// width is skipped, the interruption recorded, the bounds
    /// untouched.
    pub(crate) fn interrupted(&mut self, _k: usize, e: Interrupted) {
        self.interrupted = Some(e);
    }

    /// The probe at `k` panicked (contained on its thread). Undecided.
    pub(crate) fn panicked(&mut self, _k: usize) {}

    pub(crate) fn finish(self) -> WidthBounds {
        WidthBounds {
            proven_lower: self.proven_lower(),
            best_upper: self.best_upper,
            witness: self.witness,
            interrupted: self.interrupted,
            race: self.stats,
        }
    }
}

/// Speculative racing sibling of [`width_bounds_with`]: same contract,
/// same certified [`WidthBounds`], but up to `speculation` widths probed
/// concurrently with verdict-driven cancellation (see the [module
/// docs](self) for the out-of-order discipline).
///
/// # Arguments
///
/// Mirrors [`width_bounds_with`], plus `speculation` — the window of
/// concurrent width probes. `speculation <= 1` (or `k_max <= 1`) is the
/// **grain gate**: the sweep degenerates to the sequential loop itself,
/// byte-for-byte the same code path, so a 1-worker deployment pays no
/// coordination tax. Each probe runs `solver_for(k)` on its own thread
/// under a [`Control::child`] capped at `per_k_budget`; a parallel
/// solver fans out on its configured pool from there (concurrent probes
/// share the pool's workers).
///
/// A probe that panics is contained on its probe thread: the width goes
/// undecided and the surviving probes' verdicts still certify the
/// bounds.
///
/// [`width_bounds_with`]: crate::solver::width_bounds_with
pub fn width_bounds_racing(
    hg: &Hypergraph,
    k_max: usize,
    ctrl: &Arc<Control>,
    per_k_budget: Option<Duration>,
    speculation: usize,
    solver_for: impl Fn(usize) -> LogK,
) -> WidthBounds {
    if speculation <= 1 || k_max <= 1 {
        return width_bounds_with(hg, k_max, ctrl, per_k_budget, solver_for);
    }

    // All probes hang off one intermediate control: the drop guard
    // cancels it on any unwind out of the coordinator (e.g. an armed
    // `logk/race/join` panic), so the scope join below never waits on a
    // probe nobody will ever cancel.
    let race_root = ctrl.child();
    let _guard = CancelOnDrop(&race_root);

    let mut ledger = SweepLedger::new(k_max);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, ProbeMsg)>();
        // In-flight probes by width, with the control that kills them.
        let mut live: HashMap<usize, Arc<Control>> = HashMap::new();
        // Widths we cancelled ourselves: an `Err` coming back from one
        // of these is a race cancellation, not a sub-deadline verdict.
        let mut killed: HashSet<usize> = HashSet::new();

        loop {
            if !ledger.halted && ctrl.checkpoint().is_err() {
                cancel_all(&mut ledger, &live, &mut killed);
            }
            while live.len() < speculation {
                let Some(k) = ledger.next_probe() else { break };
                decomp::faults::hit_ctrl("logk/race/spawn", ctrl);
                let child = match per_k_budget {
                    Some(budget) => race_root.child_with_timeout(budget),
                    None => race_root.child(),
                };
                let solver = solver_for(k);
                let tx = tx.clone();
                let probe_ctrl = Arc::clone(&child);
                live.insert(k, child);
                scope.spawn(move || {
                    // Everything fallible — the fault site included —
                    // runs inside the containment boundary, so a probe
                    // always reports and the coordinator never hangs.
                    let msg =
                        match panic::catch_unwind(AssertUnwindSafe(|| {
                            decomp::faults::hit_ctrl("logk/race/probe", &probe_ctrl);
                            solver.decompose(hg, k, &probe_ctrl)
                        })) {
                            Ok(verdict) => ProbeMsg::Verdict(verdict),
                            Err(_) => ProbeMsg::Panicked,
                        };
                    let _ = tx.send((k, msg));
                });
            }
            if live.is_empty() {
                break;
            }
            let (k, msg) = rx.recv().expect("probe threads always report");
            decomp::faults::hit_ctrl("logk/race/join", ctrl);
            live.remove(&k);
            let was_killed = killed.remove(&k);
            match msg {
                ProbeMsg::Panicked => ledger.panicked(k),
                ProbeMsg::Verdict(Ok(Some(d))) => {
                    if ledger.witnessed(k, d) {
                        cancel_where(&mut ledger, &live, &mut killed, |k2| k2 >= k);
                    }
                }
                ProbeMsg::Verdict(Ok(None)) => {
                    if let Some(lower) = ledger.refuted(k) {
                        cancel_where(&mut ledger, &live, &mut killed, |k2| k2 < lower);
                    }
                }
                ProbeMsg::Verdict(Err(e)) => {
                    if was_killed {
                        ledger.cancelled(k);
                    } else {
                        ledger.interrupted(k, e);
                        if ctrl.checkpoint().is_err() {
                            cancel_all(&mut ledger, &live, &mut killed);
                        }
                    }
                }
            }
            if ledger.exact() {
                cancel_all(&mut ledger, &live, &mut killed);
            }
        }
    });
    ledger.finish()
}

/// Cancels every in-flight probe matching `pred` (idempotently).
fn cancel_where(
    ledger: &mut SweepLedger,
    live: &HashMap<usize, Arc<Control>>,
    killed: &mut HashSet<usize>,
    pred: impl Fn(usize) -> bool,
) {
    let _ = ledger;
    for (&k, child) in live {
        if pred(k) && killed.insert(k) {
            child.cancel();
        }
    }
}

/// Halts launches and cancels every in-flight probe.
fn cancel_all(
    ledger: &mut SweepLedger,
    live: &HashMap<usize, Arc<Control>>,
    killed: &mut HashSet<usize>,
) {
    ledger.halt();
    cancel_where(ledger, live, killed, |_| true);
}

/// Cancels the race's intermediate control when dropped — the unwind
/// path's guarantee that no probe outlives its coordinator.
struct CancelOnDrop<'a>(&'a Arc<Control>);

impl Drop for CancelOnDrop<'_> {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::VertexSet;

    fn dummy_witness() -> Decomposition {
        Decomposition::singleton(vec![], VertexSet::empty(1))
    }

    #[test]
    fn contiguous_refutations_advance_the_lower_bound() {
        let mut l = SweepLedger::new(5);
        assert_eq!(l.next_probe(), Some(1));
        assert_eq!(l.next_probe(), Some(2));
        assert_eq!(l.refuted(1), Some(2));
        assert_eq!(l.refuted(2), Some(3));
        assert_eq!(l.proven_lower(), 3);
        assert!(!l.exact());
    }

    #[test]
    fn out_of_order_refutation_covers_skipped_widths() {
        let mut l = SweepLedger::new(5);
        l.next_probe();
        l.next_probe();
        // k = 1 times out (undecided) …
        l.interrupted(1, Interrupted::Timeout);
        assert_eq!(l.proven_lower(), 1);
        // … but a refutation at k = 2 covers it by monotonicity.
        assert_eq!(l.refuted(2), Some(3));
        assert_eq!(l.proven_lower(), 3);
        let b = l.finish();
        assert_eq!(b.proven_lower, 3);
        assert_eq!(b.interrupted, Some(Interrupted::Timeout));
    }

    /// The regression the per-width slice budget demands: a probe that
    /// was cancelled (or timed out) must never be recorded as a
    /// refutation — conflating them would certify a false lower bound.
    #[test]
    fn cancelled_probe_is_not_a_refutation() {
        let mut l = SweepLedger::new(4);
        l.next_probe();
        l.next_probe();
        // Witness lands at k = 2; the speculative probe at k = 3 gets
        // cancelled as redundant.
        assert!(l.witnessed(2, dummy_witness()));
        l.cancelled(3);
        l.interrupted(1, Interrupted::Timeout);
        // Neither the cancellation nor the timeout advanced the bound:
        // hw ∈ [1, 2], not the corrupt "exactly 2" (or worse, a lower
        // bound past the witness) that refutation-conflation would give.
        assert_eq!(l.proven_lower(), 1);
        assert_eq!(l.finish().best_upper, Some(2));
    }

    #[test]
    fn late_witness_below_the_upper_bound_replaces_it() {
        let mut l = SweepLedger::new(6);
        for _ in 0..4 {
            l.next_probe();
        }
        assert!(l.witnessed(5, dummy_witness()));
        assert!(l.witnessed(3, dummy_witness()));
        // A witness at a width the sweep already beat is wasted work.
        assert!(!l.witnessed(4, dummy_witness()));
        let b = l.finish();
        assert_eq!(b.best_upper, Some(3));
        assert_eq!(b.race.speculative_wasted, 1);
    }

    #[test]
    fn redundant_refutation_is_wasted_not_double_counted() {
        let mut l = SweepLedger::new(5);
        l.next_probe();
        l.next_probe();
        assert_eq!(l.refuted(2), Some(3));
        assert_eq!(l.refuted(1), None);
        let b = l.finish();
        assert_eq!(b.proven_lower, 3);
        assert_eq!(b.race.speculative_wasted, 1);
    }

    #[test]
    fn exactness_and_probe_window() {
        let mut l = SweepLedger::new(5);
        assert_eq!(l.next_probe(), Some(1));
        assert_eq!(l.next_probe(), Some(2));
        l.refuted(1);
        assert!(l.witnessed(2, dummy_witness()));
        assert!(l.exact());
        // Nothing above the witness is worth probing.
        assert_eq!(l.next_probe(), None);
        let b = l.finish();
        assert!(b.exact());
        assert_eq!(b.proven_lower, 2);
    }

    #[test]
    fn halt_stops_launches() {
        let mut l = SweepLedger::new(9);
        assert_eq!(l.next_probe(), Some(1));
        l.halt();
        assert_eq!(l.next_probe(), None);
        assert_eq!(l.finish().race.probes, 1);
    }
}
