//! Reproduces Table4 of the paper. Flags as in `repro`.

use harness::{tables, ReproConfig};

fn main() {
    let (cfg, _) = ReproConfig::from_args(std::env::args().skip(1));
    println!("{}", tables::table4(&cfg));
}
