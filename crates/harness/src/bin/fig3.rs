//! Reproduces Figure 3 (solved/unsolved scatter). Flags as in `repro`.

use harness::{tables, ReproConfig};

fn main() {
    let (cfg, _) = ReproConfig::from_args(std::env::args().skip(1));
    let dir = std::path::PathBuf::from("target/repro");
    println!("{}", tables::fig3(&cfg, Some(&dir)));
}
