//! Reproduces Figure 1 (parallel scaling). Flags as in `repro`.

use harness::{tables, ReproConfig};

fn main() {
    let (cfg, _) = ReproConfig::from_args(std::env::args().skip(1));
    println!("{}", tables::fig1(&cfg));
}
