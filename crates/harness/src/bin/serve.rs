//! Decomposition-service demo: drives an `htdserve::Server` through a
//! mixed workload — decisions, an anytime minimal-width sweep, a
//! deadline-doomed request and (with `--features fault-injection` and
//! `--inject-panic`) a deliberately panicking solve — then prints every
//! verdict and the server's final accounting. Exits non-zero if any
//! verdict is unexpected, so CI can use it as a smoke test.
//!
//! Flags: `--executors N` (2), `--workers N` (0 = sequential),
//! `--queue N` (16), `--deadline-ms N` (5000 default per request),
//! `--inject-panic` (needs the `fault-injection` feature).

use std::sync::Arc;
use std::time::Duration;

use htdserve::{Outcome, Request, Server, ServerConfig};
use workloads::families;

struct Args {
    executors: usize,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    inject_panic: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        executors: 2,
        workers: 0,
        queue_depth: 16,
        deadline_ms: 5000,
        inject_panic: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--executors" => args.executors = num("--executors"),
            "--workers" => args.workers = num("--workers"),
            "--queue" => args.queue_depth = num("--queue"),
            "--deadline-ms" => args.deadline_ms = num("--deadline-ms") as u64,
            "--inject-panic" => args.inject_panic = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn describe(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Decided {
            k,
            witness: Some(_),
        } => format!("hw ≤ {k} (witnessed)"),
        Outcome::Decided { k, witness: None } => format!("hw > {k} (refuted)"),
        Outcome::Width(b) => format!("{b}"),
        Outcome::TimedOut => "timed out".into(),
        Outcome::Cancelled => "cancelled".into(),
        Outcome::Panicked { message } => format!("panicked: {message}"),
    }
}

fn main() {
    let args = parse_args();
    if args.inject_panic && cfg!(not(feature = "fault-injection")) {
        eprintln!("--inject-panic needs --features fault-injection");
        std::process::exit(2);
    }

    let server = Server::start(ServerConfig {
        executors: args.executors,
        workers: args.workers,
        queue_depth: args.queue_depth,
        default_deadline: Some(Duration::from_millis(args.deadline_ms)),
        // A contained panic should be *visible* in the demo, not
        // silently retried away.
        max_retries: if args.inject_panic { 0 } else { 1 },
        ..ServerConfig::default()
    });
    println!(
        "serving with {} executor(s), {} pool worker(s), queue depth {}",
        args.executors, args.workers, args.queue_depth
    );

    #[cfg(feature = "fault-injection")]
    if args.inject_panic {
        decomp::faults::arm("logk/solve", 1, decomp::faults::Fault::Panic);
        println!("armed: panic at the first solver entry");
    }

    // Mixed workload. Expectation key: W = witnessed, R = refuted,
    // E = exact width, T = timed out, P = panicked, A = any verdict.
    let cycle = Arc::new(families::cycle(24));
    let grid = Arc::new(families::grid(4, 4));
    let hard = Arc::new(families::chorded_cycle(96, 48, 3));
    let mut workload: Vec<(&str, char, Request)> = Vec::new();
    if args.inject_panic {
        // Submitted first so the one-shot fault lands here (with one
        // executor this is deterministic; with more it usually is).
        workload.push((
            "cycle24 k=2 [victim]",
            'A',
            Request::decide(Arc::clone(&cycle), 2),
        ));
    }
    workload.extend([
        ("cycle24 k=2", 'W', Request::decide(Arc::clone(&cycle), 2)),
        ("cycle24 k=1", 'R', Request::decide(Arc::clone(&cycle), 1)),
        (
            "grid4x4 minimal width",
            'E',
            Request::minimal_width(Arc::clone(&grid), 4),
        ),
        (
            "chorded(96,48) k=3, 30 ms deadline",
            'T',
            Request::decide(Arc::clone(&hard), 3).with_deadline(Duration::from_millis(30)),
        ),
        (
            "cycle24 k=2 (warm resubmit)",
            'W',
            Request::decide(Arc::clone(&cycle), 2),
        ),
    ]);

    let mut failures = 0;
    let mut panicked_seen = 0;
    let tickets: Vec<_> = workload
        .into_iter()
        .map(|(name, expect, req)| (name, expect, server.submit(req)))
        .collect();
    for (name, expect, ticket) in tickets {
        let Ok(ticket) = ticket else {
            println!("  {name:<40} REJECTED: {:?}", ticket.err());
            failures += 1;
            continue;
        };
        let resp = ticket.wait();
        let ok = match (expect, &resp.outcome) {
            (
                'W',
                Outcome::Decided {
                    witness: Some(_), ..
                },
            ) => true,
            ('R', Outcome::Decided { witness: None, .. }) => true,
            ('E', Outcome::Width(b)) => b.exact(),
            ('T', Outcome::TimedOut) => true,
            ('A', _) => true,
            _ => false,
        };
        if let Outcome::Panicked { .. } = &resp.outcome {
            panicked_seen += 1;
        }
        if !ok {
            failures += 1;
        }
        println!(
            "  {name:<40} {:<28} [queue {:?}, solve {:?}]{}",
            describe(&resp.outcome),
            resp.queue_wait,
            resp.solve_time,
            if ok { "" } else { "  << UNEXPECTED" },
        );
    }

    if args.inject_panic && panicked_seen != 1 {
        println!("expected exactly one contained panic, saw {panicked_seen}");
        failures += 1;
    }

    println!("hub: {:?}", server.hub_snapshot());
    let stats = server.drain();
    println!("stats: {stats}");

    if failures > 0 {
        eprintln!("{failures} unexpected verdict(s)");
        std::process::exit(1);
    }
}
