//! Decomposition-service demo: drives the same mixed workload through
//! BOTH service paths — in-process `htdserve::Server::submit`, then the
//! full wire stack (`htdwire::WireServer` on a loopback socket, spoken
//! through the retrying `htdwire::WireClient`) — and prints every
//! verdict plus each server's final accounting. With `--features
//! fault-injection` and `--inject-panic`, each phase additionally
//! absorbs one deliberately panicking solve and verifies it surfaced as
//! exactly one contained `Panicked` verdict. Exits non-zero if any
//! verdict is unexpected, so CI can use it as a smoke test.
//!
//! Flags: `--executors N` (2), `--workers N` (0 = sequential),
//! `--queue N` (16), `--deadline-ms N` (5000 default per request),
//! `--inject-panic` (needs the `fault-injection` feature).

use std::sync::Arc;
use std::time::Duration;

use htdserve::{Outcome, Request, Server, ServerConfig};
use htdwire::{ClientConfig, JobSpec, WireClient, WireConfig, WireOutcome, WireServer};
use workloads::families;

struct Args {
    executors: usize,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    inject_panic: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        executors: 2,
        workers: 0,
        queue_depth: 16,
        deadline_ms: 5000,
        inject_panic: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--executors" => args.executors = num("--executors"),
            "--workers" => args.workers = num("--workers"),
            "--queue" => args.queue_depth = num("--queue"),
            "--deadline-ms" => args.deadline_ms = num("--deadline-ms") as u64,
            "--inject-panic" => args.inject_panic = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Which service entry point an [`Item`] exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// Decide `hw ≤ k` with the default engine.
    Decide,
    /// Sweep widths up to `k`.
    Sweep,
    /// Decide `hw ≤ k` by racing the whole algorithm portfolio.
    Race,
}

/// Expectation key: W = witnessed, R = refuted, E = exact width,
/// T = timed out, P = panicked, A = any verdict.
struct Item {
    name: &'static str,
    expect: char,
    edges: Vec<Vec<u32>>,
    /// Width to decide / largest width to sweep.
    k: u32,
    kind: JobKind,
    deadline: Option<Duration>,
}

fn edge_lists(hg: &hypergraph::Hypergraph) -> Vec<Vec<u32>> {
    hg.edge_ids()
        .map(|e| hg.edge(e).iter().map(|v| v.0).collect())
        .collect()
}

/// The mixed workload both phases run. The victim (when panic injection
/// is on) is prepended by the phases themselves so it deterministically
/// absorbs the one-shot fault.
fn workload() -> Vec<Item> {
    let cycle = edge_lists(&families::cycle(24));
    let grid = edge_lists(&families::grid(4, 4));
    let hard = edge_lists(&families::chorded_cycle(96, 48, 3));
    vec![
        Item {
            name: "cycle24 k=2",
            expect: 'W',
            edges: cycle.clone(),
            k: 2,
            kind: JobKind::Decide,
            deadline: None,
        },
        Item {
            name: "cycle24 k=1",
            expect: 'R',
            edges: cycle.clone(),
            k: 1,
            kind: JobKind::Decide,
            deadline: None,
        },
        Item {
            name: "grid4x4 minimal width",
            expect: 'E',
            edges: grid,
            k: 4,
            kind: JobKind::Sweep,
            deadline: None,
        },
        Item {
            name: "chorded(96,48) k=3, 30 ms deadline",
            expect: 'T',
            edges: hard,
            k: 3,
            kind: JobKind::Decide,
            deadline: Some(Duration::from_millis(30)),
        },
        Item {
            name: "cycle24 k=2 (warm resubmit)",
            expect: 'W',
            edges: cycle.clone(),
            k: 2,
            kind: JobKind::Decide,
            deadline: None,
        },
        Item {
            name: "cycle24 race k=2 (portfolio)",
            expect: 'W',
            edges: cycle.clone(),
            k: 2,
            kind: JobKind::Race,
            deadline: None,
        },
        Item {
            name: "cycle24 race k=1 (portfolio)",
            expect: 'R',
            edges: cycle,
            k: 1,
            kind: JobKind::Race,
            deadline: None,
        },
    ]
}

fn victim() -> Item {
    Item {
        name: "cycle24 k=2 [victim]",
        expect: 'A',
        edges: edge_lists(&families::cycle(24)),
        k: 2,
        kind: JobKind::Decide,
        deadline: None,
    }
}

fn describe(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Decided {
            k,
            witness: Some(_),
        } => format!("hw ≤ {k} (witnessed)"),
        Outcome::Decided { k, witness: None } => format!("hw > {k} (refuted)"),
        Outcome::Width(b) => format!("{b}"),
        Outcome::TimedOut => "timed out".into(),
        Outcome::Cancelled => "cancelled".into(),
        Outcome::Panicked { message } => format!("panicked: {message}"),
        Outcome::Raced {
            k,
            winner,
            witness: Some(_),
        } => format!("hw ≤ {k} ({} won the race)", winner.name()),
        Outcome::Raced {
            k,
            winner,
            witness: None,
        } => format!("hw > {k} ({} won the race)", winner.name()),
    }
}

fn describe_wire(outcome: &WireOutcome) -> String {
    match outcome {
        WireOutcome::Decided {
            k,
            witness: Some(_),
        } => format!("hw ≤ {k} (witnessed)"),
        WireOutcome::Decided { k, witness: None } => format!("hw > {k} (refuted)"),
        WireOutcome::Width {
            proven_lower,
            best_upper,
            ..
        } => format!("bounds [{proven_lower}, {best_upper:?}]"),
        WireOutcome::TimedOut => "timed out".into(),
        WireOutcome::Cancelled => "cancelled".into(),
        WireOutcome::Panicked { message } => format!("panicked: {message}"),
        WireOutcome::Raced { k, winner, witness } => {
            let name = portfolio::EngineKind::from_index(*winner as usize)
                .map_or("unknown-engine", |e| e.name());
            if witness.is_some() {
                format!("hw ≤ {k} ({name} won the race)")
            } else {
                format!("hw > {k} ({name} won the race)")
            }
        }
    }
}

/// `(ok, panicked)` for one verdict against its expectation.
fn judge_wire(expect: char, outcome: &WireOutcome) -> (bool, bool) {
    let ok = match (expect, outcome) {
        (
            'W',
            WireOutcome::Decided {
                witness: Some(_), ..
            }
            | WireOutcome::Raced {
                witness: Some(_), ..
            },
        ) => true,
        (
            'R',
            WireOutcome::Decided { witness: None, .. } | WireOutcome::Raced { witness: None, .. },
        ) => true,
        (
            'E',
            WireOutcome::Width {
                proven_lower,
                best_upper,
                ..
            },
        ) => *best_upper == Some(*proven_lower),
        ('T', WireOutcome::TimedOut) => true,
        ('A', _) => true,
        _ => false,
    };
    (ok, matches!(outcome, WireOutcome::Panicked { .. }))
}

fn service_config(args: &Args) -> ServerConfig {
    ServerConfig {
        executors: args.executors,
        workers: args.workers,
        queue_depth: args.queue_depth,
        default_deadline: Some(Duration::from_millis(args.deadline_ms)),
        // A contained panic should be *visible* in the demo, not
        // silently retried away.
        max_retries: if args.inject_panic { 0 } else { 1 },
        ..ServerConfig::default()
    }
}

#[cfg(feature = "fault-injection")]
fn arm_panic() {
    decomp::faults::arm("logk/solve", 1, decomp::faults::Fault::Panic);
    println!("armed: panic at the first solver entry");
}

/// Phase 1: the workload through `Server::submit` directly.
fn run_in_process(args: &Args) -> usize {
    println!(
        "[in-process] {} executor(s), {} pool worker(s), queue depth {}",
        args.executors, args.workers, args.queue_depth
    );
    let server = Server::start(service_config(args));

    #[cfg(feature = "fault-injection")]
    if args.inject_panic {
        arm_panic();
    }

    let mut items = Vec::new();
    if args.inject_panic {
        // Submitted (and with one executor, executed) first, so the
        // one-shot fault lands here.
        items.push(victim());
    }
    items.extend(workload());

    let mut failures = 0;
    let mut panicked_seen = 0;
    let tickets: Vec<_> = items
        .into_iter()
        .map(|item| {
            let hg = Arc::new(hypergraph::Hypergraph::from_edge_lists(&item.edges));
            let mut req = match item.kind {
                JobKind::Decide => Request::decide(hg, item.k as usize),
                JobKind::Sweep => Request::minimal_width(hg, item.k as usize),
                JobKind::Race => Request::race(hg, item.k as usize),
            };
            if let Some(d) = item.deadline {
                req = req.with_deadline(d);
            }
            (item.name, item.expect, server.submit(req))
        })
        .collect();
    for (name, expect, ticket) in tickets {
        let Ok(ticket) = ticket else {
            println!("  {name:<40} REJECTED: {:?}", ticket.err());
            failures += 1;
            continue;
        };
        let resp = ticket.wait();
        let ok = match (expect, &resp.outcome) {
            (
                'W',
                Outcome::Decided {
                    witness: Some(_), ..
                }
                | Outcome::Raced {
                    witness: Some(_), ..
                },
            ) => true,
            (
                'R',
                Outcome::Decided { witness: None, .. } | Outcome::Raced { witness: None, .. },
            ) => true,
            ('E', Outcome::Width(b)) => b.exact(),
            ('T', Outcome::TimedOut) => true,
            ('A', _) => true,
            _ => false,
        };
        if let Outcome::Panicked { .. } = &resp.outcome {
            panicked_seen += 1;
        }
        if !ok {
            failures += 1;
        }
        println!(
            "  {name:<40} {:<28} [queue {:?}, solve {:?}]{}",
            describe(&resp.outcome),
            resp.queue_wait,
            resp.solve_time,
            if ok { "" } else { "  << UNEXPECTED" },
        );
    }

    if args.inject_panic && panicked_seen != 1 {
        println!("expected exactly one contained panic, saw {panicked_seen}");
        failures += 1;
    }

    println!("hub: {:?}", server.hub_snapshot());
    let stats = server.drain();
    println!("stats: {stats}");
    failures
}

/// Phase 2: the same workload over a loopback socket through the
/// retrying wire client.
fn run_over_wire(args: &Args) -> usize {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: service_config(args),
            ..WireConfig::default()
        },
    )
    .expect("bind wire server");
    let addr = server.local_addr();
    println!("[wire] same workload via {addr} through htdwire::WireClient");
    let client = WireClient::new(addr, ClientConfig::default());

    let mut failures = 0;
    let mut panicked_seen = 0;

    #[cfg(feature = "fault-injection")]
    if args.inject_panic {
        arm_panic();
    }
    if args.inject_panic {
        // Run the victim to completion first so the one-shot fault
        // deterministically lands on it even with many executors.
        let item = victim();
        let spec = JobSpec::decide(item.edges, item.k);
        match client.request(spec) {
            Ok(reply) => {
                let (_, panicked) = judge_wire(item.expect, &reply.outcome);
                if panicked {
                    panicked_seen += 1;
                }
                println!("  {:<40} {}", item.name, describe_wire(&reply.outcome));
            }
            Err(e) => {
                println!("  {:<40} CLIENT ERROR: {e}", item.name);
                failures += 1;
            }
        }
    }

    for item in workload() {
        let mut spec = match item.kind {
            JobKind::Decide => JobSpec::decide(item.edges, item.k),
            JobKind::Sweep => JobSpec::minimal_width(item.edges, item.k),
            JobKind::Race => JobSpec::race(item.edges, item.k),
        };
        if let Some(d) = item.deadline {
            spec = spec.with_deadline(d);
        }
        match client.request(spec) {
            Ok(reply) => {
                let (ok, panicked) = judge_wire(item.expect, &reply.outcome);
                if panicked {
                    panicked_seen += 1;
                }
                if !ok {
                    failures += 1;
                }
                println!(
                    "  {:<40} {:<28} [queue {:?}, solve {:?}, attempts {}]{}",
                    item.name,
                    describe_wire(&reply.outcome),
                    reply.queue_wait,
                    reply.solve_time,
                    reply.attempts,
                    if ok { "" } else { "  << UNEXPECTED" },
                );
            }
            Err(e) => {
                println!("  {:<40} CLIENT ERROR: {e}", item.name);
                failures += 1;
            }
        }
    }

    if args.inject_panic && panicked_seen != 1 {
        println!("expected exactly one contained panic over the wire, saw {panicked_seen}");
        failures += 1;
    }

    let report = server.drain();
    println!(
        "wire: {} connection(s), {} replies ({} raced), {} rejects",
        report.wire.connections_accepted,
        report.wire.replies_sent,
        report.wire.race_replies_sent,
        report.wire.rejects_sent
    );
    println!("stats: {}", report.service);
    failures
}

fn main() {
    let args = parse_args();
    if args.inject_panic && cfg!(not(feature = "fault-injection")) {
        eprintln!("--inject-panic needs --features fault-injection");
        std::process::exit(2);
    }

    let mut failures = run_in_process(&args);
    failures += run_over_wire(&args);

    if failures > 0 {
        eprintln!("{failures} unexpected verdict(s)");
        std::process::exit(1);
    }
}
