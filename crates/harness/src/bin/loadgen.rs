//! Tail-latency load generator for the wire frontend.
//!
//! Starts a [`htdwire::WireServer`] on an ephemeral port, drives it
//! with sustained mixed traffic (fast decisions, minimal-width sweeps,
//! portfolio races, and deadline-doomed hard instances) from many
//! concurrent connections, and reports client-observed latency
//! percentiles, shed rate and goodput as JSON.
//!
//! Flags: `--workers N` service executors (2), `--clients N` concurrent
//! client threads (8), `--duration-ms N` sustained-load window (2000),
//! `--deadline-ms N` per-request deadline (300), `--queue N` admission
//! queue depth (4), `--seed N` traffic-mix seed (7), `--out PATH`
//! output file (`BENCH_service_load.json`).
//!
//! The output follows the workspace bench schema (`group` + `benches`
//! with `median_ns` entries, readable by `bench::parse_medians`);
//! latency percentiles appear as benches `p50_latency`/`p95_latency`/
//! `p99_latency`, with the traffic accounting alongside. See
//! BENCHMARKS.md § Service load.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use htdserve::ServerConfig;
use htdwire::{ClientConfig, ClientError, JobSpec, WireClient, WireConfig, WireServer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use workloads::families;

struct Args {
    workers: usize,
    clients: usize,
    duration_ms: u64,
    deadline_ms: u64,
    queue_depth: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 2,
        clients: 8,
        duration_ms: 2000,
        deadline_ms: 300,
        queue_depth: 4,
        seed: 7,
        out: "BENCH_service_load.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let num = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--workers" => args.workers = num("--workers", next("--workers")) as usize,
            "--clients" => args.clients = num("--clients", next("--clients")) as usize,
            "--duration-ms" => args.duration_ms = num("--duration-ms", next("--duration-ms")),
            "--deadline-ms" => args.deadline_ms = num("--deadline-ms", next("--deadline-ms")),
            "--queue" => args.queue_depth = num("--queue", next("--queue")) as usize,
            "--seed" => args.seed = num("--seed", next("--seed")),
            "--out" => args.out = next("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn edge_lists(hg: &hypergraph::Hypergraph) -> Vec<Vec<u32>> {
    hg.edge_ids()
        .map(|e| hg.edge(e).iter().map(|v| v.0).collect())
        .collect()
}

/// One finished request, as the client saw it.
struct Sample {
    class: &'static str,
    latency: Duration,
    kind: Kind,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// A verdict (decided / width bounds) inside the deadline.
    Ok,
    /// Answered, but the deadline fired first.
    TimedOut,
    /// Load-shed: overloaded/expired past the retry budget.
    Shed,
    /// Anything else (transport errors, contained panics, ...).
    Error,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: ServerConfig {
                executors: args.workers,
                workers: 1,
                queue_depth: args.queue_depth,
                ..ServerConfig::default()
            },
            retry_after_ms: 5,
            ..WireConfig::default()
        },
    )
    .expect("bind loadgen server");
    let addr = server.local_addr();
    eprintln!(
        "loadgen: {} executor(s), queue {}, {} client(s), {} ms @ {}",
        args.workers, args.queue_depth, args.clients, args.duration_ms, addr
    );

    // The traffic mix: mostly fast decisions (the goodput carriers),
    // some sweeps, and a slice of deadline-doomed hard instances that
    // occupy executors and pressure the tail.
    let small = edge_lists(&families::cycle(24));
    let grid = edge_lists(&families::grid(4, 4));
    let hard = edge_lists(&families::chorded_cycle(64, 24, 7));
    let deadline = Duration::from_millis(args.deadline_ms);

    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let started = Instant::now();
    let until = started + Duration::from_millis(args.duration_ms);
    std::thread::scope(|s| {
        for c in 0..args.clients {
            let samples = &samples;
            let (small, grid, hard) = (&small, &grid, &hard);
            let seed = args.seed;
            s.spawn(move || {
                let client = WireClient::new(
                    addr,
                    ClientConfig {
                        max_attempts: 2, // one overload retry, then count as shed
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(20),
                        seed: seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ..ClientConfig::default()
                    },
                );
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(c as u64));
                let mut local = Vec::new();
                while Instant::now() < until {
                    let roll: u32 = rng.random_range(0..100);
                    let (class, spec) = if roll < 50 {
                        ("decide_small", JobSpec::decide(small.clone(), 2))
                    } else if roll < 70 {
                        ("width_grid", JobSpec::minimal_width(grid.clone(), 4))
                    } else if roll < 85 {
                        ("race_small", JobSpec::race(small.clone(), 2))
                    } else {
                        ("decide_hard", JobSpec::decide(hard.clone(), 3))
                    };
                    let t0 = Instant::now();
                    let result = client.request(spec.with_deadline(deadline));
                    let latency = t0.elapsed();
                    let kind = match &result {
                        Ok(reply) => match &reply.outcome {
                            htdwire::WireOutcome::Decided { .. }
                            | htdwire::WireOutcome::Width { .. }
                            | htdwire::WireOutcome::Raced { .. } => Kind::Ok,
                            htdwire::WireOutcome::TimedOut => Kind::TimedOut,
                            _ => Kind::Error,
                        },
                        Err(ClientError::Rejected(_))
                        | Err(ClientError::RetriesExhausted { .. }) => Kind::Shed,
                        Err(_) => Kind::Error,
                    };
                    local.push(Sample {
                        class,
                        latency,
                        kind,
                    });
                }
                samples.lock().unwrap().extend(local);
            });
        }
    });
    let wall = started.elapsed();
    let report = server.drain();

    let samples = samples.into_inner().unwrap();
    let total = samples.len();
    let count = |k: Kind| samples.iter().filter(|s| s.kind == k).count();
    let (ok, timed_out, shed, errors) = (
        count(Kind::Ok),
        count(Kind::TimedOut),
        count(Kind::Shed),
        count(Kind::Error),
    );
    let mut ok_latencies: Vec<Duration> = samples
        .iter()
        .filter(|s| s.kind == Kind::Ok)
        .map(|s| s.latency)
        .collect();
    ok_latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&ok_latencies, 0.50),
        percentile(&ok_latencies, 0.95),
        percentile(&ok_latencies, 0.99),
    );
    let shed_rate = if total > 0 {
        shed as f64 / total as f64
    } else {
        0.0
    };
    let goodput_rps = ok as f64 / wall.as_secs_f64();

    let mut per_class = String::new();
    for class in ["decide_small", "width_grid", "race_small", "decide_hard"] {
        let n = samples.iter().filter(|s| s.class == class).count();
        let n_ok = samples
            .iter()
            .filter(|s| s.class == class && s.kind == Kind::Ok)
            .count();
        if !per_class.is_empty() {
            per_class.push_str(", ");
        }
        per_class.push_str(&format!("\"{class}\": {{\"total\": {n}, \"ok\": {n_ok}}}"));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"group\": \"service/load\",\n",
            "  \"workers\": {workers},\n",
            "  \"clients\": {clients},\n",
            "  \"duration_ms\": {duration},\n",
            "  \"deadline_ms\": {deadline},\n",
            "  \"queue_depth\": {queue},\n",
            "  \"benches\": [\n",
            "    {{\"id\": \"p50_latency\", \"median_ns\": {p50}}},\n",
            "    {{\"id\": \"p95_latency\", \"median_ns\": {p95}}},\n",
            "    {{\"id\": \"p99_latency\", \"median_ns\": {p99}}}\n",
            "  ],\n",
            "  \"requests\": {{\"total\": {total}, \"ok\": {ok}, \"timed_out\": {timed_out}, ",
            "\"shed\": {shed}, \"errors\": {errors}}},\n",
            "  \"per_class\": {{{per_class}}},\n",
            "  \"shed_rate\": {shed_rate:.4},\n",
            "  \"goodput_rps\": {goodput:.1},\n",
            "  \"service\": {{\"submitted\": {submitted}, \"shed_overload\": {shed_overload}, ",
            "\"shed_expired\": {shed_expired}, \"completed\": {completed}, ",
            "\"timed_out\": {svc_timed_out}, \"expired_in_queue\": {expired_in_queue}, ",
            "\"coalesced\": {coalesced}, \"races\": {races}, ",
            "\"race_cancels\": {race_cancels}, \"speculative_wasted\": {speculative_wasted}, ",
            "\"races_won_by\": {races_won_by}}},\n",
            "  \"wire\": {{\"connections\": {conns}, \"replies\": {replies}, ",
            "\"race_replies\": {race_replies}, \"rejects\": {rejects}}}\n",
            "}}\n",
        ),
        workers = args.workers,
        clients = args.clients,
        duration = args.duration_ms,
        deadline = args.deadline_ms,
        queue = args.queue_depth,
        p50 = p50.as_nanos(),
        p95 = p95.as_nanos(),
        p99 = p99.as_nanos(),
        total = total,
        ok = ok,
        timed_out = timed_out,
        shed = shed,
        errors = errors,
        per_class = per_class,
        shed_rate = shed_rate,
        goodput = goodput_rps,
        submitted = report.service.submitted,
        shed_overload = report.service.shed_overload,
        shed_expired = report.service.shed_expired,
        completed = report.service.completed,
        svc_timed_out = report.service.timed_out,
        expired_in_queue = report.service.expired_in_queue,
        coalesced = report.service.coalesced,
        races = report.service.races,
        race_cancels = report.service.race_cancels,
        speculative_wasted = report.service.speculative_wasted,
        races_won_by = {
            let wins: Vec<String> = report
                .service
                .races_won_by
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let name = portfolio::EngineKind::from_index(i).map_or("?", |e| e.name());
                    format!("{{\"engine\": \"{name}\", \"wins\": {n}}}")
                })
                .collect();
            format!("[{}]", wins.join(", "))
        },
        conns = report.wire.connections_accepted,
        replies = report.wire.replies_sent,
        race_replies = report.wire.race_replies_sent,
        rejects = report.wire.rejects_sent,
    );
    std::fs::write(&args.out, &json).expect("write loadgen report");
    eprintln!(
        "loadgen: {total} requests in {wall:.1?} — ok {ok}, timed-out {timed_out}, \
         shed {shed} ({:.1}%), errors {errors}",
        shed_rate * 100.0
    );
    eprintln!("loadgen: p50 {p50:?}  p95 {p95:?}  p99 {p99:?}  goodput {goodput_rps:.1} req/s");
    eprintln!("loadgen: wrote {}", args.out);

    // The generator is also a smoke test: sustained load must produce
    // real goodput and no transport-level errors.
    if ok == 0 || errors > 0 {
        eprintln!("loadgen: FAILED (ok={ok}, errors={errors})");
        std::process::exit(1);
    }
}
