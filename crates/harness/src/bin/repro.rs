//! Reproduce the paper's tables and figures: `repro [flags] [artifacts…]`.
//!
//! `repro all` regenerates everything; individual names: `table1`,
//! `table2`, `table3`, `table4`, `table5`, `fig1`, `fig3`.

use harness::{tables, ReproConfig};

fn main() {
    let (cfg, rest) = ReproConfig::from_args(std::env::args().skip(1));
    let wanted: Vec<String> = if rest.is_empty() || rest.iter().any(|a| a == "all") {
        [
            "table1", "table2", "table3", "table4", "table5", "fig1", "fig3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        rest
    };
    let csv_dir = std::path::PathBuf::from("target/repro");
    for artifact in &wanted {
        let text = match artifact.as_str() {
            "table1" => tables::table1(&cfg),
            "table2" => tables::table2(&cfg),
            "table3" => tables::table3(&cfg),
            "table4" => tables::table4(&cfg),
            "table5" => tables::table5(&cfg),
            "fig1" => tables::fig1(&cfg),
            "fig3" => tables::fig3(&cfg, Some(&csv_dir)),
            other => {
                eprintln!("unknown artifact {other}; known: table1..table5, fig1, fig3, all");
                std::process::exit(2);
            }
        };
        println!("{text}");
    }
}
