//! Reproductions of every table and figure in the paper's evaluation.
//!
//! Each function regenerates one artifact: it builds the (scaled) corpus,
//! runs the competing methods under the configured budget, and prints our
//! measurements side by side with the paper's published numbers. Absolute
//! times differ by construction (scaled corpus, scaled timeout, different
//! machine); the reproduction target is the *shape* — who solves more,
//! where the timeouts concentrate, how scaling behaves.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use workloads::{hb_large_like, hyperbench_like, CorpusConfig, Instance};

use crate::config::ReproConfig;
use crate::paper;
use crate::run::{decide_width, find_optimal_width, Method};
use crate::stats::Stats;
use crate::sweep::{sweep, SweepRow};

fn corpus(cfg: &ReproConfig) -> Vec<Instance> {
    hyperbench_like(CorpusConfig {
        seed: cfg.seed,
        scale: cfg.scale(),
    })
}

fn header(out: &mut String, title: &str, cfg: &ReproConfig) {
    let _ = writeln!(out, "{}", "=".repeat(78));
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "(corpus scale 1/{}, timeout {:?} per run, k_max {}, {} threads)",
        cfg.scale_div, cfg.timeout, cfg.k_max, cfg.threads
    );
    let _ = writeln!(out, "{}", "=".repeat(78));
}

/// The three methods compared in Table 1, in the paper's column order.
fn table1_methods(cfg: &ReproConfig) -> Vec<Method> {
    vec![
        Method::DetK,
        Method::HtdSat,
        Method::LogKHybrid {
            threads: cfg.threads,
        },
    ]
}

/// **Table 1**: #solved and runtimes per origin × size group.
pub fn table1(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 1 — solved instances & runtimes per method (paper numbers in brackets)",
        cfg,
    );
    let corpus = corpus(cfg);
    let methods = table1_methods(cfg);
    let rows = sweep(&corpus, &methods, cfg);

    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>5} | {:>33} | {:>33} | {:>33}",
        "Origin", "Size", "n", "det-k-decomp", "htd-sat (HtdLEO sub)", "log-k Hybrid"
    );
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>5} | {:>33} | {:>33} | {:>33}",
        "", "", "", "#solved avg max stdev", "#solved avg max stdev", "#solved avg max stdev"
    );

    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut total_group = 0usize;
    for pref in paper::TABLE1 {
        let group: Vec<&SweepRow> = rows
            .iter()
            .filter(|r| r.inst.origin == pref.origin && r.inst.band() == pref.band)
            .collect();
        let n = group.len() / methods.len();
        if n == 0 {
            continue;
        }
        total_group += n;
        let mut cells = Vec::new();
        for (mi, &m) in methods.iter().enumerate() {
            let times: Vec<f64> = group
                .iter()
                .filter(|r| r.method == m && r.result.solved())
                .map(|r| r.result.secs())
                .collect();
            totals[mi].extend_from_slice(&times);
            let s = Stats::from_times(&times);
            let paper_solved = match mi {
                0 => pref.detk,
                1 => pref.htdleo,
                _ => pref.logk_hybrid,
            };
            cells.push(format!("{} [{paper_solved}/{}]", s.cell(), pref.group));
        }
        let _ = writeln!(
            out,
            "{:<14} {:<16} {:>5} | {} | {} | {}",
            pref.origin.to_string(),
            pref.band.label(),
            n,
            cells[0],
            cells[1],
            cells[2]
        );
    }
    // Totals.
    let (pg, pd, ph, pl) = paper::TABLE1_TOTAL;
    let cells: Vec<String> = totals
        .iter()
        .zip([pd, ph, pl])
        .map(|(times, p)| format!("{} [{p}/{pg}]", Stats::from_times(times).cell()))
        .collect();
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>5} | {} | {} | {}",
        "Total", "-", total_group, cells[0], cells[1], cells[2]
    );

    // Section 5.2 headline claims, recomputed on our corpus.
    let hybrid = methods[2];
    let low_width: Vec<&str> = rows
        .iter()
        .filter(|r| r.method == hybrid && r.result.solved() && r.result.width.unwrap_or(99) <= 6)
        .map(|r| r.inst.name.as_str())
        .collect();
    let _ = writeln!(
        out,
        "\nlog-k Hybrid solved {} instances at width <= 6 (paper: 2930 of 3224, 92%)",
        low_width.len()
    );

    // ghw = hw cross-check (paper §5.2: never lower on solved instances).
    let mut both = 0usize;
    let mut equal = 0usize;
    for inst in &corpus {
        let hw = rows
            .iter()
            .find(|r| std::ptr::eq(r.inst, inst) && r.method == hybrid && r.result.solved())
            .and_then(|r| r.result.width);
        let ghw = rows
            .iter()
            .find(|r| std::ptr::eq(r.inst, inst) && r.method == Method::HtdSat && r.result.solved())
            .and_then(|r| r.result.width);
        if let (Some(hw), Some(ghw)) = (hw, ghw) {
            both += 1;
            if hw == ghw {
                equal += 1;
            }
            if ghw > hw {
                let _ = writeln!(out, "!! ghw {ghw} > hw {hw} on {} (bug)", inst.name);
            }
        }
    }
    let _ = writeln!(
        out,
        "ghw == hw on {equal}/{both} instances solved by both (paper: ghw never below hw)"
    );
    out
}

/// **Table 2**: hybrid metric/threshold study on the HB_large analogue.
pub fn table2(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 2 — hybrid methods on HB_large (paper numbers in brackets)",
        cfg,
    );
    let corpus = hb_large_like(cfg.seed ^ 0x51AB, cfg.hb_large_count);
    let mut methods: Vec<Method> = paper::TABLE2
        .iter()
        .map(|&(name, threshold, _, _)| Method::LogKHybridWith {
            threads: cfg.threads,
            weighted: name == "WeightedCount",
            threshold,
        })
        .collect();
    methods.push(Method::DetK);
    methods.push(Method::HtdSat);

    let rows = sweep(&corpus, &methods, cfg);
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>8} {:>14} | {:>22}",
        "Method", "Threshold", "Solved", "Avg runtime(s)", "paper: solved avg(s)"
    );
    for (mi, &m) in methods.iter().enumerate() {
        let times: Vec<f64> = rows
            .iter()
            .filter(|r| r.method == m && r.result.solved())
            .map(|r| r.result.secs())
            .collect();
        let s = Stats::from_times(&times);
        let (label, thr, psolved, pavg) = if mi < paper::TABLE2.len() {
            let p = paper::TABLE2[mi];
            (p.0.to_string(), format!("{}", p.1), p.2, p.3)
        } else {
            let p = paper::TABLE2_BASELINES[mi - paper::TABLE2.len()];
            (p.0.to_string(), "-".to_string(), p.1, p.2)
        };
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>8} {:>14.2} | {:>10}/465 {:>9.2}",
            label,
            thr,
            format!("{}/{}", s.solved, corpus.len()),
            s.avg,
            psolved,
            pavg
        );
    }
    out
}

/// **Table 3**: instances solved per optimal width, plus the Virtual Best.
pub fn table3(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 3 — instances solved per width (paper numbers in brackets)",
        cfg,
    );
    let corpus = corpus(cfg);
    let methods = table1_methods(cfg);
    let rows = sweep(&corpus, &methods, cfg);
    let hybrid = methods[2];

    let _ = writeln!(
        out,
        "{:>5} {:>16} {:>16} {:>16} {:>16}",
        "Width", "Virtual Best", "det-k-decomp", "htd-sat", "log-k Hybrid"
    );
    for w in 1..=cfg.k_max {
        let count = |m: Method| {
            rows.iter()
                .filter(|r| r.method == m && r.result.solved() && r.result.width == Some(w))
                .count()
        };
        // Virtual best: solved by any method; bucket by the hybrid's width
        // when available (an hw), otherwise by the solving method's width.
        let vb = corpus
            .iter()
            .filter(|inst| {
                let best = rows
                    .iter()
                    .filter(|r| std::ptr::eq(r.inst, *inst) && r.result.solved())
                    .find(|r| r.method == hybrid)
                    .or_else(|| {
                        rows.iter()
                            .find(|r| std::ptr::eq(r.inst, *inst) && r.result.solved())
                    });
                best.map(|r| r.result.width == Some(w)).unwrap_or(false)
            })
            .count();
        let p = paper::TABLE3.iter().find(|row| row.0 == w);
        let fmt = |ours: usize, paper_n: Option<usize>| match paper_n {
            Some(pn) => format!("{ours} [{pn}]"),
            None => format!("{ours}"),
        };
        let _ = writeln!(
            out,
            "{:>5} {:>16} {:>16} {:>16} {:>16}",
            w,
            fmt(vb, p.map(|p| p.1)),
            fmt(count(methods[0]), p.map(|p| p.2)),
            fmt(count(methods[1]), p.map(|p| p.3)),
            fmt(count(hybrid), p.map(|p| p.4)),
        );
    }
    out
}

/// **Table 4**: for how many instances can each method decide `hw ≤ w`.
pub fn table4(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 4 — upper-bound decisions hw <= w (paper numbers in brackets)",
        cfg,
    );
    let corpus = corpus(cfg);
    let methods = [
        Method::LogKHybrid {
            threads: cfg.threads,
        },
        Method::DetK,
        Method::LogK {
            threads: cfg.threads,
        },
    ];
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>16} {:>16} {:>14}",
        "Problem", "Virtual Best", "log-k (Hybrid)", "det-k-decomp", "log-k"
    );
    for w in 1..=6usize {
        let mut counts = [0usize; 3];
        let mut vb = 0usize;
        for inst in &corpus {
            let mut any = false;
            for (mi, &m) in methods.iter().enumerate() {
                if decide_width(m, &inst.hg, w, cfg.timeout).is_some() {
                    counts[mi] += 1;
                    any = true;
                }
            }
            if any {
                vb += 1;
            }
        }
        let p = paper::TABLE4.iter().find(|row| row.0 == w);
        let fmt = |ours: usize, pn: Option<usize>| match pn {
            Some(pn) => format!("{ours} [{pn}]"),
            None => format!("{ours}"),
        };
        let _ = writeln!(
            out,
            "hw <= {:<2} {:>14} {:>16} {:>16} {:>14}",
            w,
            fmt(vb, p.map(|p| p.1)),
            fmt(counts[0], p.map(|p| p.2)),
            fmt(counts[1], p.map(|p| p.3)),
            fmt(counts[2], p.map(|p| p.4)),
        );
    }
    let _ = writeln!(
        out,
        "\n(Each cell: instances for which the method determined hw <= w or refuted it\nwithin the budget; paper Table 4 columns in brackets.)"
    );
    out
}

/// **Table 5**: the SAT baseline with a 10× budget.
pub fn table5(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 5 — htd-sat with 10x timeout (paper: HtdLEO 10h vs 1h, in brackets)",
        cfg,
    );
    let corpus = corpus(cfg);
    let short = cfg.timeout;
    let long = cfg.timeout * 10;
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>6} {:>10} {:>10} {:>8} | {:>18}",
        "Origin", "Size", "n", "solved@1x", "solved@10x", "delta", "paper solved(+dlt)"
    );
    let mut t_short = 0usize;
    let mut t_long = 0usize;
    for &(origin, band, psolved, pdelta) in paper::TABLE5 {
        let insts: Vec<&Instance> = corpus
            .iter()
            .filter(|i| i.origin == origin && i.band() == band)
            .collect();
        if insts.is_empty() {
            continue;
        }
        let solved_with = |budget: Duration| {
            insts
                .iter()
                .filter(|i| find_optimal_width(Method::HtdSat, &i.hg, cfg.k_max, budget).solved())
                .count()
        };
        let a = solved_with(short);
        let b = solved_with(long);
        t_short += a;
        t_long += b;
        let _ = writeln!(
            out,
            "{:<14} {:<16} {:>6} {:>10} {:>10} {:>+8} | {:>12} (+{})",
            origin.to_string(),
            band.label(),
            insts.len(),
            a,
            b,
            b as i64 - a as i64,
            psolved,
            pdelta
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>6} {:>10} {:>10} {:>+8} | {:>12} (+{})",
        "Total",
        "-",
        "",
        t_short,
        t_long,
        t_long as i64 - t_short as i64,
        2766,
        222
    );
    out
}

/// **Figure 1**: scaling with the number of cores on HB_large.
pub fn fig1(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 1 — parallel scaling on HB_large (avg seconds per core count)",
        cfg,
    );
    let corpus = hb_large_like(cfg.seed ^ 0xF161, cfg.hb_large_count);
    let max_cores = cfg.threads.clamp(1, 6);
    // Figure 1 uses a generous budget so the scaling (not the timeouts)
    // dominates the picture.
    let budget = cfg.timeout * 4;

    // Per method and core count: per-instance times (None = timeout).
    type MethodCtor = fn(usize) -> Method;
    let variants: [(&str, MethodCtor); 2] = [
        ("log-k", |n| Method::LogK { threads: n }),
        ("log-k (Hybrid)", |n| Method::LogKHybrid { threads: n }),
    ];
    let mut timeouts: Vec<(String, usize)> = Vec::new();
    for (label, mk) in variants {
        let mut per_core: Vec<Vec<Option<f64>>> = Vec::new();
        let mut timeout_count = 0usize;
        for n in 1..=max_cores {
            let mut times = Vec::with_capacity(corpus.len());
            for inst in &corpus {
                let r = find_optimal_width(mk(n), &inst.hg, cfg.k_max, budget);
                if r.solved() {
                    times.push(Some(r.secs()));
                } else {
                    times.push(None);
                    timeout_count += 1;
                }
            }
            per_core.push(times);
        }
        // Average only over instances solved at every core count
        // (the paper's methodology for Figure 1).
        let always: Vec<usize> = (0..corpus.len())
            .filter(|&i| per_core.iter().all(|v| v[i].is_some()))
            .collect();
        let _ = writeln!(out, "\n{label} (averaged over {} instances):", always.len());
        let _ = writeln!(out, "{:>7} {:>12} {:>12}", "#cores", "avg (s)", "speedup");
        let base: Option<f64> = per_core.first().map(|v| {
            always.iter().map(|&i| v[i].expect("filtered")).sum::<f64>()
                / always.len().max(1) as f64
        });
        for (ci, v) in per_core.iter().enumerate() {
            let avg = always.iter().map(|&i| v[i].expect("filtered")).sum::<f64>()
                / always.len().max(1) as f64;
            let _ = writeln!(
                out,
                "{:>7} {:>12.3} {:>11.2}x",
                ci + 1,
                avg,
                base.map(|b| b / avg).unwrap_or(1.0)
            );
        }
        timeouts.push((label.to_string(), timeout_count));
    }

    // Reference: det-k-decomp, single core.
    let start = Instant::now();
    let mut detk_times = Vec::new();
    let mut detk_timeouts = 0usize;
    for inst in &corpus {
        let r = find_optimal_width(Method::DetK, &inst.hg, cfg.k_max, budget);
        if r.solved() {
            detk_times.push(r.secs());
        } else {
            detk_timeouts += 1;
        }
    }
    let _ = start;
    let s = Stats::from_times(&detk_times);
    let _ = writeln!(
        out,
        "\ndet-k-decomp reference (1 core): solved {} of {}, avg {:.3}s",
        s.solved,
        corpus.len(),
        s.avg
    );
    timeouts.push(("det-k-decomp".to_string(), detk_timeouts));

    let _ = writeln!(out, "\nTimeout counts (sum over all core counts):");
    for (label, t) in &timeouts {
        let ptimeout = paper::FIG1_TIMEOUTS
            .iter()
            .find(|(n, _)| label.starts_with(n) || n.starts_with(label.as_str()))
            .map(|&(_, t)| t);
        let _ = writeln!(
            out,
            "  {:<16} {:>6} {}",
            label,
            t,
            ptimeout
                .map(|p| format!("[paper: {p}]"))
                .unwrap_or_default()
        );
    }
    let _ = writeln!(
        out,
        "\n(paper Figure 1: log-k avg {}s at 1 core to {}s at 4 cores — ~linear speedup)",
        paper::FIG1_LOGK_SECONDS[0].1,
        paper::FIG1_LOGK_SECONDS[3].1
    );
    out
}

/// **Figure 3**: solved/unsolved scatter by #edges × #vertices; emits CSV
/// series per method next to the textual summary.
pub fn fig3(cfg: &ReproConfig, csv_dir: Option<&std::path::Path>) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 3 — solved (green) vs unsolved (red) scatter data per method",
        cfg,
    );
    let corpus = corpus(cfg);
    let methods = table1_methods(cfg);
    let rows = sweep(&corpus, &methods, cfg);

    for &m in &methods {
        let mut csv = String::from("name,origin,edges,vertices,solved,width\n");
        let mut solved_small = 0usize;
        let mut solved_large = 0usize;
        let mut unsolved_small = 0usize;
        let mut unsolved_large = 0usize;
        for r in rows.iter().filter(|r| r.method == m) {
            let e = r.inst.hg.num_edges();
            let v = r.inst.hg.num_vertices();
            let solved = r.result.solved();
            let _ = writeln!(
                csv,
                "{},{},{e},{v},{},{}",
                r.inst.name,
                r.inst.origin,
                solved,
                r.result.width.map(|w| w.to_string()).unwrap_or_default()
            );
            match (solved, e > 50) {
                (true, false) => solved_small += 1,
                (true, true) => solved_large += 1,
                (false, false) => unsolved_small += 1,
                (false, true) => unsolved_large += 1,
            }
        }
        if let Some(dir) = csv_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!(
                "fig3_{}.csv",
                m.name().replace(['(', ')', ' '], "_")
            ));
            let _ = std::fs::write(&path, &csv);
            let _ = writeln!(out, "wrote {}", path.display());
        }
        let _ = writeln!(
            out,
            "{:<22} |E|<=50: {} solved / {} unsolved; |E|>50: {} solved / {} unsolved",
            m.name(),
            solved_small,
            unsolved_small,
            solved_large,
            unsolved_large
        );
    }
    let _ = writeln!(
        out,
        "\n(paper Figure 3: det-k loses most large instances; log-k keeps solving at scale)"
    );
    out
}
