//! The paper's published numbers, embedded so every reproduction prints
//! its measurements side by side with the original (Tables 1–5, Figure 1).

use workloads::{Origin, SizeBand};

/// Table 1 reference row: (origin, band, group size, #solved per method).
pub struct Table1Row {
    /// Origin group.
    pub origin: Origin,
    /// Edge-count band.
    pub band: SizeBand,
    /// Instances in the group.
    pub group: usize,
    /// NewDetKDecomp #solved.
    pub detk: usize,
    /// HtdLEO #solved.
    pub htdleo: usize,
    /// log-k-decomp Hybrid #solved.
    pub logk_hybrid: usize,
}

/// Table 1 of the paper.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        origin: Origin::Application,
        band: SizeBand::To100,
        group: 405,
        detk: 97,
        htdleo: 65,
        logk_hybrid: 261,
    },
    Table1Row {
        origin: Origin::Application,
        band: SizeBand::To75,
        group: 514,
        detk: 276,
        htdleo: 448,
        logk_hybrid: 469,
    },
    Table1Row {
        origin: Origin::Application,
        band: SizeBand::To50,
        group: 369,
        detk: 253,
        htdleo: 237,
        logk_hybrid: 253,
    },
    Table1Row {
        origin: Origin::Application,
        band: SizeBand::UpTo10,
        group: 915,
        detk: 906,
        htdleo: 876,
        logk_hybrid: 915,
    },
    Table1Row {
        origin: Origin::Synthetic,
        band: SizeBand::Over100,
        group: 66,
        detk: 18,
        htdleo: 13,
        logk_hybrid: 34,
    },
    Table1Row {
        origin: Origin::Synthetic,
        band: SizeBand::To100,
        group: 422,
        detk: 87,
        htdleo: 312,
        logk_hybrid: 235,
    },
    Table1Row {
        origin: Origin::Synthetic,
        band: SizeBand::To75,
        group: 215,
        detk: 38,
        htdleo: 212,
        logk_hybrid: 215,
    },
    Table1Row {
        origin: Origin::Synthetic,
        band: SizeBand::To50,
        group: 647,
        detk: 290,
        htdleo: 303,
        logk_hybrid: 625,
    },
    Table1Row {
        origin: Origin::Synthetic,
        band: SizeBand::UpTo10,
        group: 95,
        detk: 95,
        htdleo: 78,
        logk_hybrid: 95,
    },
];

/// Table 1 totals: (group, detk, htdleo, logk_hybrid).
pub const TABLE1_TOTAL: (usize, usize, usize, usize) = (3648, 2060, 2544, 3102);

/// Table 2 of the paper: (method, threshold, solved-of-465, avg seconds).
pub const TABLE2: &[(&str, u32, usize, f64)] = &[
    ("WeightedCount", 200, 395, 92.15),
    ("WeightedCount", 400, 411, 93.53),
    ("WeightedCount", 600, 410, 87.86),
    ("EdgeCount", 20, 171, 130.0),
    ("EdgeCount", 40, 219, 145.09),
    ("EdgeCount", 80, 292, 117.33),
];

/// Table 2 baselines: (method, solved-of-465, avg seconds).
pub const TABLE2_BASELINES: &[(&str, usize, f64)] =
    &[("NewDetKDecomp", 174, 318.93), ("HtdLEO", 277, 779.39)];

/// Table 3 of the paper: per width — (width, virtual best, NewDetKDecomp,
/// HtdLEO, log-k-decomp Hybrid).
pub const TABLE3: &[(usize, usize, usize, usize, usize)] = &[
    (1, 709, 677, 649, 709),
    (2, 595, 586, 567, 595),
    (3, 310, 310, 273, 310),
    (4, 386, 379, 321, 386),
    (5, 450, 38, 341, 450),
    (6, 485, 28, 307, 480),
    (7, 124, 9, 16, 108),
    (8, 115, 1, 69, 46),
    (9, 19, 0, 1, 18),
];

/// Table 4 of the paper: (w, virtual best, hybrid, NewDetKDecomp, log-k).
pub const TABLE4: &[(usize, usize, usize, usize, usize)] = &[
    (1, 3648, 3648, 3616, 3648),
    (2, 3648, 3648, 3631, 3648),
    (3, 3637, 3637, 3355, 3567),
    (4, 3623, 3623, 2391, 3178),
    (5, 3616, 3611, 2485, 2924),
    (6, 3370, 3253, 2897, 2349),
];

/// Table 5 of the paper: HtdLEO at 10 h — (origin, band, solved, delta
/// versus the 1 h run).
pub const TABLE5: &[(Origin, SizeBand, usize, i32)] = &[
    (Origin::Application, SizeBand::To100, 94, 29),
    (Origin::Application, SizeBand::To75, 461, 13),
    (Origin::Application, SizeBand::To50, 237, 0),
    (Origin::Application, SizeBand::UpTo10, 876, 0),
    (Origin::Synthetic, SizeBand::Over100, 13, 0),
    (Origin::Synthetic, SizeBand::To100, 360, 48),
    (Origin::Synthetic, SizeBand::To75, 214, 2),
    (Origin::Synthetic, SizeBand::To50, 433, 130),
    (Origin::Synthetic, SizeBand::UpTo10, 78, 0),
];

/// Figure 1 of the paper: average seconds on HB_large per core count for
/// `log-k-decomp` (the headline linear-scaling observation).
pub const FIG1_LOGK_SECONDS: &[(usize, f64)] = &[
    (1, 189.0),
    (2, 95.0),
    (3, 65.0),
    (4, 50.0),
    (5, 47.0),
    (6, 45.0),
];

/// Figure 1 timeout counts: (method, timeouts).
pub const FIG1_TIMEOUTS: &[(&str, usize)] = &[
    ("log-k (Hybrid)", 143),
    ("log-k", 666),
    ("NewDetKDecomp", 611),
];
