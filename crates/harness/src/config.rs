//! Harness configuration and a tiny argument parser (no CLI dependency).
//!
//! The paper ran 3648 instances with 1 h timeouts on a 12-node cluster;
//! the defaults here shrink the corpus and the budget so a full
//! reproduction sweep finishes on a laptop-class machine. Every knob is
//! overridable: `--scale-div=12 --timeout-ms=60000` approaches the paper's
//! setup given the hardware and the patience.

use std::time::Duration;

/// All experiment knobs.
#[derive(Clone, Copy, Debug)]
pub struct ReproConfig {
    /// Corpus seed.
    pub seed: u64,
    /// Corpus scale divisor: group sizes are HyperBench's divided by this.
    pub scale_div: u32,
    /// Per-(instance, method) wall-clock budget.
    pub timeout: Duration,
    /// Largest width tried (the paper uses widths in `[1, 10]`).
    pub k_max: usize,
    /// Threads for the parallel solvers.
    pub threads: usize,
    /// Instances for the HB_large analogue (Figure 1 / Table 2).
    pub hb_large_count: usize,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            seed: 0xB0BA_CAFE,
            scale_div: 36,
            timeout: Duration::from_millis(1000),
            k_max: 8,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            hb_large_count: 12,
        }
    }
}

impl ReproConfig {
    /// Corpus scale as a fraction.
    pub fn scale(&self) -> f64 {
        1.0 / self.scale_div as f64
    }

    /// Parses `--key=value` style arguments, ignoring unknown ones after
    /// printing a warning.
    pub fn from_args(args: impl Iterator<Item = String>) -> (ReproConfig, Vec<String>) {
        let mut cfg = ReproConfig::default();
        let mut rest = Vec::new();
        for arg in args {
            if let Some(v) = arg.strip_prefix("--seed=") {
                cfg.seed = v.parse().expect("--seed=<u64>");
            } else if let Some(v) = arg.strip_prefix("--scale-div=") {
                cfg.scale_div = v.parse().expect("--scale-div=<u32>");
            } else if let Some(v) = arg.strip_prefix("--timeout-ms=") {
                cfg.timeout = Duration::from_millis(v.parse().expect("--timeout-ms=<u64>"));
            } else if let Some(v) = arg.strip_prefix("--kmax=") {
                cfg.k_max = v.parse().expect("--kmax=<usize>");
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                cfg.threads = v.parse().expect("--threads=<usize>");
            } else if let Some(v) = arg.strip_prefix("--hb-large=") {
                cfg.hb_large_count = v.parse().expect("--hb-large=<usize>");
            } else if arg == "--quick" {
                cfg.scale_div = 100;
                cfg.timeout = Duration::from_millis(300);
                cfg.hb_large_count = 6;
            } else {
                rest.push(arg);
            }
        }
        (cfg, rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let (cfg, rest) = ReproConfig::from_args(
            ["--seed=7", "--timeout-ms=50", "--kmax=4", "table1"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.timeout, Duration::from_millis(50));
        assert_eq!(cfg.k_max, 4);
        assert_eq!(rest, vec!["table1".to_string()]);
    }

    #[test]
    fn quick_preset() {
        let (cfg, _) = ReproConfig::from_args(["--quick".to_string()].into_iter());
        assert_eq!(cfg.scale_div, 100);
    }
}
