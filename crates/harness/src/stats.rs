//! Runtime statistics in the paper's format: #solved, avg, max, stdev —
//! averages taken over *solved* instances only (Section 5.1: "timed out
//! instances are not considered in the running time calculation").

/// Aggregate of solved-run times.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of solved runs.
    pub solved: usize,
    /// Mean runtime over solved runs (seconds).
    pub avg: f64,
    /// Maximum runtime over solved runs (seconds).
    pub max: f64,
    /// Population standard deviation over solved runs (seconds).
    pub stdev: f64,
}

impl Stats {
    /// Computes stats from the runtimes of solved runs.
    pub fn from_times(times: &[f64]) -> Stats {
        if times.is_empty() {
            return Stats::default();
        }
        let n = times.len() as f64;
        let avg = times.iter().sum::<f64>() / n;
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        let var = times.iter().map(|t| (t - avg) * (t - avg)).sum::<f64>() / n;
        Stats {
            solved: times.len(),
            avg,
            max,
            stdev: var.sqrt(),
        }
    }

    /// One formatted row cell: `#solved avg max stdev`.
    pub fn cell(&self) -> String {
        format!(
            "{:>5}  {:>8.2} {:>8.2} {:>8.2}",
            self.solved, self.avg, self.max, self.stdev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = Stats::from_times(&[]);
        assert_eq!(s.solved, 0);
        assert_eq!(s.avg, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_times(&[1.0, 2.0, 3.0]);
        assert_eq!(s.solved, 3);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!((s.stdev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
