//! Runtime statistics in the paper's format: #solved, avg, max, stdev —
//! averages taken over *solved* instances only (Section 5.1: "timed out
//! instances are not considered in the running time calculation") — plus
//! aggregated engine counters (recursion, memoisation, allocation) that
//! the sweep reports alongside timings.

use logk::SolveStats;

/// Aggregate of solved-run times.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of solved runs.
    pub solved: usize,
    /// Mean runtime over solved runs (seconds).
    pub avg: f64,
    /// Maximum runtime over solved runs (seconds).
    pub max: f64,
    /// Population standard deviation over solved runs (seconds).
    pub stdev: f64,
}

impl Stats {
    /// Computes stats from the runtimes of solved runs.
    pub fn from_times(times: &[f64]) -> Stats {
        if times.is_empty() {
            return Stats::default();
        }
        let n = times.len() as f64;
        let avg = times.iter().sum::<f64>() / n;
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        let var = times.iter().map(|t| (t - avg) * (t - avg)).sum::<f64>() / n;
        Stats {
            solved: times.len(),
            avg,
            max,
            stdev: var.sqrt(),
        }
    }

    /// One formatted row cell: `#solved avg max stdev`.
    pub fn cell(&self) -> String {
        format!(
            "{:>5}  {:>8.2} {:>8.2} {:>8.2}",
            self.solved, self.avg, self.max, self.stdev
        )
    }
}

/// Aggregated `log-k-decomp` engine counters over one or more solves:
/// recursion profile, negative-cache effectiveness, `det-k-decomp` handoff
/// memoisation, and allocation behaviour of the scratch workspaces.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Solves absorbed into this aggregate.
    pub solves: u64,
    /// Total `Decomp` invocations.
    pub decomp_calls: u64,
    /// Deepest recursion level observed.
    pub max_depth: usize,
    /// Subproblem-cache positive hits (fragments reused).
    pub cache_pos_hits: u64,
    /// Subproblem-cache negative hits (refutations reused).
    pub cache_neg_hits: u64,
    /// Subproblem-cache misses.
    pub cache_misses: u64,
    /// Subproblem-cache insertions.
    pub cache_inserts: u64,
    /// Entries evicted by the second-chance sweep.
    pub cache_evictions: u64,
    /// Special-leaf id rewrites while re-interning positive fragments.
    pub cache_id_rewrites: u64,
    /// Largest cache footprint observed (bytes).
    pub cache_bytes_peak: usize,
    /// Hybrid handoffs to `det-k-decomp`.
    pub detk_handoffs: u64,
    /// Hits of the shared `det-k-decomp` memo table.
    pub detk_memo_hits: u64,
    /// Misses of the shared `det-k-decomp` memo table.
    pub detk_memo_misses: u64,
    /// Largest `det-k-decomp` memo table observed (entries).
    pub detk_cache_peak: usize,
    /// Configured `det-k-decomp` memo cap (entries).
    pub detk_cache_cap: usize,
    /// λc candidates enumerated but rejected.
    pub lambda_c_rejected: u64,
    /// λp candidates enumerated but rejected.
    pub lambda_p_rejected: u64,
    /// λp candidate sets cut by the admissibility pre-filter before
    /// the BFS stage (upper bound on separations avoided: whole-loop
    /// skips count their full subset space).
    pub lambda_p_prefiltered: u64,
    /// `separate_into` calls performed — the denominator the λp
    /// pre-filter and split memo exist to shrink.
    pub separations: u64,
    /// Pool-worker deque steals during `log-k-decomp` solves — the
    /// work-stealing scheduler redistributing uneven λc subtrees.
    pub sched_steals: u64,
    /// Pool-worker parks during solves — idle capacity the race left.
    pub sched_parks: u64,
    /// Scratch-workspace bundles allocated.
    pub scratch_allocs: u64,
    /// Buffer growths inside scratch workspaces.
    pub scratch_grow_events: u64,
    /// Cheap (Arc-bump) arena checkpoints handed to parallel branches.
    pub arena_branch_clones: u64,
    /// Child loops that fanned their sibling subproblems out on the pool
    /// (below-children parallelism) instead of recursing sequentially.
    pub child_splits: u64,
    /// Sibling branches cancelled at child join points by the fail-fast
    /// link before producing a verdict.
    pub child_cancels: u64,
    /// Branch fragments folded back under their parent arena at child
    /// join points (rebase passes).
    pub arena_rebases: u64,
}

impl From<&SolveStats> for EngineCounters {
    fn from(s: &SolveStats) -> Self {
        EngineCounters {
            solves: 1,
            decomp_calls: s.decomp_calls,
            max_depth: s.max_depth,
            cache_pos_hits: s.cache.pos_hits,
            cache_neg_hits: s.cache.neg_hits,
            cache_misses: s.cache.misses,
            cache_inserts: s.cache.inserts,
            cache_evictions: s.cache.evictions,
            cache_id_rewrites: s.cache.id_rewrites,
            cache_bytes_peak: s.cache.bytes,
            detk_handoffs: s.detk_handoffs,
            detk_memo_hits: s.detk_memo.hits,
            detk_memo_misses: s.detk_memo.misses,
            detk_cache_peak: s.detk_cache_peak,
            detk_cache_cap: s.detk_cache_cap,
            lambda_c_rejected: s.lambda_c_rejected,
            lambda_p_rejected: s.lambda_p_rejected,
            lambda_p_prefiltered: s.lambda_p_prefiltered,
            separations: s.separations,
            sched_steals: s.sched_steals,
            sched_parks: s.sched_parks,
            scratch_allocs: s.scratch_allocs,
            scratch_grow_events: s.scratch_grow_events,
            arena_branch_clones: s.arena_branch_clones,
            child_splits: s.child_splits,
            child_cancels: s.child_cancels,
            arena_rebases: s.arena_rebases,
        }
    }
}

impl EngineCounters {
    /// Folds one solve's statistics into the aggregate.
    pub fn absorb(&mut self, s: &SolveStats) {
        self.merge(&EngineCounters::from(s));
    }

    /// Folds another aggregate into this one (sums the monotone
    /// counters, maxes the peaks).
    pub fn merge(&mut self, other: &EngineCounters) {
        self.solves += other.solves;
        self.decomp_calls += other.decomp_calls;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.cache_pos_hits += other.cache_pos_hits;
        self.cache_neg_hits += other.cache_neg_hits;
        self.cache_misses += other.cache_misses;
        self.cache_inserts += other.cache_inserts;
        self.cache_evictions += other.cache_evictions;
        self.cache_id_rewrites += other.cache_id_rewrites;
        self.cache_bytes_peak = self.cache_bytes_peak.max(other.cache_bytes_peak);
        self.detk_handoffs += other.detk_handoffs;
        self.detk_memo_hits += other.detk_memo_hits;
        self.detk_memo_misses += other.detk_memo_misses;
        self.detk_cache_peak = self.detk_cache_peak.max(other.detk_cache_peak);
        self.detk_cache_cap = self.detk_cache_cap.max(other.detk_cache_cap);
        self.lambda_c_rejected += other.lambda_c_rejected;
        self.lambda_p_rejected += other.lambda_p_rejected;
        self.lambda_p_prefiltered += other.lambda_p_prefiltered;
        self.separations += other.separations;
        self.sched_steals += other.sched_steals;
        self.sched_parks += other.sched_parks;
        self.scratch_allocs += other.scratch_allocs;
        self.scratch_grow_events += other.scratch_grow_events;
        self.arena_branch_clones += other.arena_branch_clones;
        self.child_splits += other.child_splits;
        self.child_cancels += other.child_cancels;
        self.arena_rebases += other.arena_rebases;
    }

    /// Total subproblem-cache hits (positive + negative).
    pub fn cache_hits(&self) -> u64 {
        self.cache_pos_hits + self.cache_neg_hits
    }

    /// Cache hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits() + self.cache_misses;
        if lookups == 0 {
            return 0.0;
        }
        self.cache_hits() as f64 / lookups as f64
    }

    /// One-line human-readable rendering for sweep reports.
    pub fn summary(&self) -> String {
        format!(
            "decomp_calls={} max_depth={} cache: {}/{} hits ({:.1}%, {} pos + {} neg), \
             {} inserted, {} evicted, {} id-rewrites, peak {} KiB; \
             detk: {} handoffs, memo {}/{} hits, peak {}/{}; \
             candidates rejected: {} λc + {} λp ({} λp pre-filtered, {} separations run); \
             sched: {} steals, {} parks; \
             children: {} splits, {} cancels, {} rebases; \
             alloc: {} scratch bundles ({} regrowths), {} arena checkpoints",
            self.decomp_calls,
            self.max_depth,
            self.cache_hits(),
            self.cache_hits() + self.cache_misses,
            100.0 * self.hit_rate(),
            self.cache_pos_hits,
            self.cache_neg_hits,
            self.cache_inserts,
            self.cache_evictions,
            self.cache_id_rewrites,
            self.cache_bytes_peak / 1024,
            self.detk_handoffs,
            self.detk_memo_hits,
            self.detk_memo_hits + self.detk_memo_misses,
            self.detk_cache_peak,
            self.detk_cache_cap,
            self.lambda_c_rejected,
            self.lambda_p_rejected,
            self.lambda_p_prefiltered,
            self.separations,
            self.sched_steals,
            self.sched_parks,
            self.child_splits,
            self.child_cancels,
            self.arena_rebases,
            self.scratch_allocs,
            self.scratch_grow_events,
            self.arena_branch_clones,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = Stats::from_times(&[]);
        assert_eq!(s.solved, 0);
        assert_eq!(s.avg, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_times(&[1.0, 2.0, 3.0]);
        assert_eq!(s.solved, 3);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!((s.stdev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn counters_absorb_and_merge() {
        let mut a = EngineCounters::default();
        let mut s = SolveStats {
            decomp_calls: 10,
            max_depth: 3,
            detk_handoffs: 2,
            detk_cache_peak: 5,
            detk_cache_cap: 100,
            scratch_allocs: 4,
            arena_branch_clones: 1,
            lambda_c_rejected: 7,
            lambda_p_rejected: 11,
            lambda_p_prefiltered: 13,
            separations: 17,
            sched_steals: 19,
            sched_parks: 23,
            child_splits: 29,
            child_cancels: 31,
            arena_rebases: 37,
            ..Default::default()
        };
        s.cache.pos_hits = 2;
        s.cache.neg_hits = 4;
        s.cache.misses = 2;
        s.cache.inserts = 2;
        s.cache.evictions = 1;
        s.cache.id_rewrites = 3;
        s.cache.bytes = 2048;
        s.detk_memo.hits = 5;
        s.detk_memo.misses = 5;
        a.absorb(&s);
        a.absorb(&s);
        assert_eq!(a.solves, 2);
        assert_eq!(a.decomp_calls, 20);
        assert_eq!(a.max_depth, 3);
        assert_eq!(a.cache_pos_hits, 4);
        assert_eq!(a.cache_neg_hits, 8);
        assert_eq!(a.cache_hits(), 12);
        assert_eq!(a.cache_evictions, 2);
        assert_eq!(a.cache_id_rewrites, 6);
        assert_eq!(a.detk_memo_hits, 10);
        assert_eq!(a.lambda_c_rejected, 14);
        assert_eq!(a.lambda_p_rejected, 22);
        assert_eq!(a.lambda_p_prefiltered, 26);
        assert_eq!(a.separations, 34);
        assert_eq!(a.sched_steals, 38);
        assert_eq!(a.sched_parks, 46);
        assert_eq!(a.child_splits, 58);
        assert_eq!(a.child_cancels, 62);
        assert_eq!(a.arena_rebases, 74);
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);

        let mut b = EngineCounters::default();
        b.merge(&a);
        assert_eq!(b.decomp_calls, a.decomp_calls);
        assert!(b.summary().contains("75.0%"));
        assert!(b.summary().contains("evicted"));
    }
}
