//! Experiment harness: reproduces every table and figure of the paper's
//! evaluation (Tables 1–5, Figures 1 and 3) on the scaled HyperBench-like
//! corpus.
//!
//! Binaries (`cargo run --release -p harness --bin <name> [-- flags]`):
//!
//! * `repro` — run any subset: `repro table1 fig1 …` or `repro all`;
//! * `table1` … `table5`, `fig1`, `fig3` — one artifact each.
//!
//! Flags: `--scale-div=N --timeout-ms=N --kmax=N --threads=N --seed=N
//! --hb-large=N --quick` (see [`config::ReproConfig`]).

pub mod config;
pub mod paper;
pub mod run;
pub mod stats;
pub mod sweep;
pub mod tables;

pub use config::ReproConfig;
pub use run::{decide_width, find_optimal_width, Method, RunResult, RunStatus};
pub use stats::{EngineCounters, Stats};
pub use sweep::aggregate_counters;
