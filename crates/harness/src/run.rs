//! Solver runners with the paper's experimental discipline: per-instance
//! wall-clock timeout, optimal-width search by iterating k, certified
//! (validated) witnesses, and explicit memout reporting.

use std::time::{Duration, Instant};

use decomp::{validate_ghd, validate_hd, Control, Decomposition};
use hypergraph::Hypergraph;
use logk::{HybridConfig, HybridMetric, LogK};

use crate::stats::EngineCounters;

/// The competing methods, named as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// `log-k-decomp` without hybridisation (parallel).
    LogK {
        /// Worker threads.
        threads: usize,
    },
    /// The paper's flagship: hybrid `log-k-decomp` (Appendix D.2).
    LogKHybrid {
        /// Worker threads.
        threads: usize,
    },
    /// Hybrid with an explicit metric/threshold (Table 2).
    LogKHybridWith {
        /// Worker threads.
        threads: usize,
        /// Use `WeightedCount` (true) or `EdgeCount` (false).
        weighted: bool,
        /// Switch threshold.
        threshold: u32,
    },
    /// `det-k-decomp` (stands in for NewDetKDecomp).
    DetK,
    /// SAT-based optimal-width solver (stands in for HtdLEO; exact ghw).
    HtdSat,
    /// BalancedGo-style GHD search (upper bounds).
    Ghd,
}

impl Method {
    /// Display name used in tables.
    pub fn name(self) -> String {
        match self {
            Method::LogK { threads } => format!("log-k-decomp({threads}t)"),
            Method::LogKHybrid { threads } => format!("log-k Hybrid({threads}t)"),
            Method::LogKHybridWith {
                weighted,
                threshold,
                ..
            } => format!(
                "{}({threshold})",
                if weighted {
                    "WeightedCount"
                } else {
                    "EdgeCount"
                }
            ),
            Method::DetK => "det-k-decomp".to_string(),
            Method::HtdSat => "htd-sat".to_string(),
            Method::Ghd => "balanced-ghd".to_string(),
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// Optimal width found and certified within the budget.
    Solved,
    /// Wall-clock budget exhausted.
    Timeout,
    /// Encoding exceeded the memory budget (SAT baseline only).
    Memout,
    /// Search space exhausted up to `k_max`: proves `width > k_max`.
    WidthExceeded,
    /// A returned witness failed validation (a solver bug — counted
    /// loudly, never silently).
    InvalidWitness,
}

/// Result of one (method, instance) run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Outcome class.
    pub status: RunStatus,
    /// Optimal width, when solved.
    pub width: Option<usize>,
    /// Wall-clock time of the run (whole optimal-width search).
    pub time: Duration,
    /// Engine counters (recursion, memoisation, allocation) aggregated
    /// over the width search — `log-k-decomp` methods only.
    pub counters: Option<EngineCounters>,
}

impl RunResult {
    /// Whether this run counts as "solved" in the paper's sense.
    pub fn solved(&self) -> bool {
        self.status == RunStatus::Solved
    }

    /// Seconds as f64 (for stats).
    pub fn secs(&self) -> f64 {
        self.time.as_secs_f64()
    }
}

fn certify_hd(hg: &Hypergraph, d: &Decomposition, k: usize) -> bool {
    d.width() <= k && validate_hd(hg, d).is_ok()
}

fn certify_ghd(hg: &Hypergraph, d: &Decomposition, k: usize) -> bool {
    d.width() <= k && validate_ghd(hg, d).is_ok()
}

/// Runs `method` on `hg`, searching for the optimal width `≤ k_max` under
/// a single wall-clock `budget` (as in the paper: "running time necessary
/// to compute the optimal width decomposition").
pub fn find_optimal_width(
    method: Method,
    hg: &Hypergraph,
    k_max: usize,
    budget: Duration,
) -> RunResult {
    let start = Instant::now();
    let ctrl = Control::with_timeout(budget);
    let mut counters: Option<EngineCounters> = None;
    let outcome = match method {
        Method::LogK { threads } => {
            let solver = LogK::parallel(threads);
            classify_logk(hg, k_max, start, &solver, &ctrl, &mut counters)
        }
        Method::LogKHybrid { threads } => {
            let solver = LogK::hybrid(threads);
            classify_logk(hg, k_max, start, &solver, &ctrl, &mut counters)
        }
        Method::LogKHybridWith {
            threads,
            weighted,
            threshold,
        } => {
            let solver = LogK::parallel(threads).with_hybrid(Some(HybridConfig {
                metric: if weighted {
                    HybridMetric::WeightedCount
                } else {
                    HybridMetric::EdgeCount
                },
                threshold: threshold as f64,
            }));
            classify_logk(hg, k_max, start, &solver, &ctrl, &mut counters)
        }
        Method::DetK => {
            classify_iterative(hg, k_max, start, |k| detk::decompose_detk(hg, k, &ctrl))
        }
        Method::Ghd => {
            return match ghd::minimal_width_ghd(hg, k_max, &ctrl) {
                Ok(Some((w, d))) => finish(start, certify_ghd(hg, &d, w), Some(w)),
                Ok(None) => RunResult {
                    status: RunStatus::WidthExceeded,
                    width: None,
                    time: start.elapsed(),
                    counters: None,
                },
                Err(_) => RunResult {
                    status: RunStatus::Timeout,
                    width: None,
                    time: start.elapsed(),
                    counters: None,
                },
            };
        }
        Method::HtdSat => {
            return match htdsat::optimal_ghw(hg, k_max, &ctrl) {
                Ok(Some((w, d))) => finish(start, certify_ghd(hg, &d, w), Some(w)),
                Ok(None) => RunResult {
                    status: RunStatus::WidthExceeded,
                    width: None,
                    time: start.elapsed(),
                    counters: None,
                },
                Err(htdsat::HtdSatError::EncodingTooLarge { .. }) => RunResult {
                    status: RunStatus::Memout,
                    width: None,
                    time: start.elapsed(),
                    counters: None,
                },
                Err(htdsat::HtdSatError::Interrupted(_)) => RunResult {
                    status: RunStatus::Timeout,
                    width: None,
                    time: start.elapsed(),
                    counters: None,
                },
            };
        }
    };
    // classify_iterative certifies every witness inline.
    let (status, width) = outcome;
    RunResult {
        status,
        width,
        time: start.elapsed(),
        counters,
    }
}

/// [`classify_iterative`] for the `log-k-decomp` methods, additionally
/// aggregating the engine's search/memoisation/allocation counters.
fn classify_logk(
    hg: &Hypergraph,
    k_max: usize,
    start: Instant,
    solver: &LogK,
    ctrl: &Control,
    counters: &mut Option<EngineCounters>,
) -> (RunStatus, Option<usize>) {
    let agg = counters.get_or_insert_with(EngineCounters::default);
    classify_iterative(hg, k_max, start, |k| {
        let (d, stats) = solver.decompose_with_stats(hg, k, ctrl)?;
        agg.absorb(&stats);
        Ok(d)
    })
}

/// Shared iterate-k-and-classify logic for HD solvers. The closure decides
/// width ≤ k and returns a witness on success.
fn classify_iterative(
    hg: &Hypergraph,
    k_max: usize,
    start: Instant,
    mut decide: impl FnMut(usize) -> Result<Option<Decomposition>, decomp::Interrupted>,
) -> (RunStatus, Option<usize>) {
    for k in 1..=k_max {
        match decide(k) {
            Ok(Some(d)) => {
                if certify_hd(hg, &d, k) {
                    return (RunStatus::Solved, Some(k));
                }
                return (RunStatus::InvalidWitness, Some(k));
            }
            Ok(None) => continue, // hw > k, proven
            Err(_) => return (RunStatus::Timeout, None),
        }
    }
    let _ = start;
    (RunStatus::WidthExceeded, None)
}

fn finish(start: Instant, valid: bool, width: Option<usize>) -> RunResult {
    RunResult {
        status: if valid {
            RunStatus::Solved
        } else {
            RunStatus::InvalidWitness
        },
        width,
        time: start.elapsed(),
        counters: None,
    }
}

/// Decision run for Table 4: does `hw(H) ≤ w` hold? Returns
/// `Some(true/false)` when determined within the budget, `None` otherwise.
pub fn decide_width(method: Method, hg: &Hypergraph, w: usize, budget: Duration) -> Option<bool> {
    let ctrl = Control::with_timeout(budget);
    match method {
        Method::LogK { threads } => LogK::parallel(threads).decide(hg, w, &ctrl).ok(),
        Method::LogKHybrid { threads } => LogK::hybrid(threads).decide(hg, w, &ctrl).ok(),
        Method::LogKHybridWith { threads, .. } => LogK::hybrid(threads).decide(hg, w, &ctrl).ok(),
        Method::DetK => detk::decide_detk(hg, w, &ctrl).ok(),
        Method::Ghd => ghd::decompose_ghd(hg, w, &ctrl).ok().map(|d| d.is_some()),
        Method::HtdSat => htdsat::decide_ghw(hg, w, &ctrl).ok().map(|d| d.is_some()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn all_methods_solve_the_ten_cycle() {
        let hg = cycle(10);
        let budget = Duration::from_secs(20);
        for m in [
            Method::LogK { threads: 1 },
            Method::LogKHybrid { threads: 1 },
            Method::DetK,
            Method::HtdSat,
            Method::Ghd,
        ] {
            let r = find_optimal_width(m, &hg, 4, budget);
            assert_eq!(r.status, RunStatus::Solved, "{}", m.name());
            assert_eq!(r.width, Some(2), "{}", m.name());
        }
    }

    #[test]
    fn zero_budget_times_out() {
        let hg = cycle(30);
        let r = find_optimal_width(Method::DetK, &hg, 6, Duration::from_millis(0));
        assert!(matches!(r.status, RunStatus::Timeout | RunStatus::Solved));
    }

    #[test]
    fn width_exceeded_reported() {
        // K7 has hw 4 > k_max = 2.
        let mut edges = Vec::new();
        for a in 0..7u32 {
            for b in a + 1..7 {
                edges.push(vec![a, b]);
            }
        }
        let hg = Hypergraph::from_edge_lists(&edges);
        let r = find_optimal_width(
            Method::LogKHybrid { threads: 1 },
            &hg,
            2,
            Duration::from_secs(30),
        );
        assert_eq!(r.status, RunStatus::WidthExceeded);
    }

    #[test]
    fn decide_width_agrees_with_optimum() {
        let hg = cycle(8);
        let budget = Duration::from_secs(10);
        assert_eq!(
            decide_width(Method::LogKHybrid { threads: 1 }, &hg, 1, budget),
            Some(false)
        );
        assert_eq!(
            decide_width(Method::LogKHybrid { threads: 1 }, &hg, 2, budget),
            Some(true)
        );
    }
}
