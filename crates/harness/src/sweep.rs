//! The shared experiment sweep: every method on every corpus instance,
//! with per-run budgets, progress reporting and loud validation failures.

use std::time::Instant;

use workloads::Instance;

use crate::config::ReproConfig;
use crate::run::{find_optimal_width, Method, RunResult, RunStatus};
use crate::stats::EngineCounters;

/// One (instance, method) outcome.
pub struct SweepRow<'a> {
    /// The instance.
    pub inst: &'a Instance,
    /// The method.
    pub method: Method,
    /// What happened.
    pub result: RunResult,
}

/// Runs every method on every instance sequentially (so per-run timings
/// are not distorted by sibling runs competing for cores).
pub fn sweep<'a>(
    corpus: &'a [Instance],
    methods: &[Method],
    cfg: &ReproConfig,
) -> Vec<SweepRow<'a>> {
    let started = Instant::now();
    let total = corpus.len() * methods.len();
    let mut rows = Vec::with_capacity(total);
    let mut done = 0usize;
    for inst in corpus {
        for &method in methods {
            let result = find_optimal_width(method, &inst.hg, cfg.k_max, cfg.timeout);
            if result.status == RunStatus::InvalidWitness {
                eprintln!(
                    "!! INVALID WITNESS: {} on {} (solver bug)",
                    method.name(),
                    inst.name
                );
            }
            // Sanity: certified generator upper bounds must never be
            // undercut by HD methods (ghw-based methods may be lower).
            if let (Some(w), Some(upper), false) = (
                result.width,
                inst.width_upper,
                matches!(method, Method::HtdSat | Method::Ghd),
            ) {
                if w > upper {
                    eprintln!(
                        "!! WIDTH ABOVE CERTIFIED BOUND: {} found {w} > {upper} on {}",
                        method.name(),
                        inst.name
                    );
                }
            }
            rows.push(SweepRow {
                inst,
                method,
                result,
            });
            done += 1;
            if done.is_multiple_of(50) {
                eprintln!(
                    "  [{done}/{total}] {:.1}s elapsed",
                    started.elapsed().as_secs_f64()
                );
            }
        }
    }
    let engine_totals = aggregate_counters(&rows);
    if engine_totals.solves > 0 {
        eprintln!("  engine totals: {}", engine_totals.summary());
    }
    rows
}

/// Sums the engine counters of every `log-k-decomp` run in the sweep.
pub fn aggregate_counters(rows: &[SweepRow<'_>]) -> EngineCounters {
    let mut total = EngineCounters::default();
    for row in rows {
        if let Some(c) = &row.result.counters {
            total.merge(c);
        }
    }
    total
}
