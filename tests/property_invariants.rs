//! Property-based tests (proptest) for the core invariants:
//! component separation laws, solver agreement, Yannakakis semantics,
//! and parser robustness.

use decomp::{validate_hd_width, Control};
use hypergraph::{separate, Hypergraph, SpecialArena, Subproblem, Vertex, VertexSet};
use logk::LogK;
use proptest::prelude::*;

/// Strategy: a random small hypergraph as raw edge lists.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0u32..10, 2..4), 1..10)
        .prop_map(|edges| Hypergraph::from_edge_lists(&edges))
}

/// Strategy: hypergraph plus a separator vertex set.
fn arb_graph_and_sep() -> impl Strategy<Value = (Hypergraph, Vec<u32>)> {
    (arb_hypergraph(), prop::collection::vec(0u32..10, 0..5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Components partition the subproblem: every edge lands in exactly
    /// one component or in the covered set.
    #[test]
    fn separation_partitions_edges((hg, sep_v) in arb_graph_and_sep()) {
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = VertexSet::from_iter(
            hg.num_vertices(),
            sep_v.iter().filter(|&&v| (v as usize) < hg.num_vertices()).map(|&v| Vertex(v)),
        );
        let s = separate(&hg, &arena, &sub, &sep);
        let mut seen = hg.edge_set();
        for c in &s.components {
            prop_assert!(seen.is_disjoint_from(c.edges()));
            seen.union_with(c.edges());
            prop_assert!(!c.edges().is_empty() || !c.specials().is_empty());
        }
        seen.union_with(&s.covered_edges);
        prop_assert_eq!(seen, sub.edges);
    }

    /// Components are pairwise non-adjacent modulo the separator.
    #[test]
    fn components_are_disconnected((hg, sep_v) in arb_graph_and_sep()) {
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = VertexSet::from_iter(
            hg.num_vertices(),
            sep_v.iter().filter(|&&v| (v as usize) < hg.num_vertices()).map(|&v| Vertex(v)),
        );
        let s = separate(&hg, &arena, &sub, &sep);
        for (i, a) in s.components.iter().enumerate() {
            for b in s.components.iter().skip(i + 1) {
                for ea in a.edges() {
                    for eb in b.edges() {
                        prop_assert!(
                            !hg.edge(ea).intersects_outside(hg.edge(eb), &sep),
                            "edges {ea:?} and {eb:?} are [U]-adjacent across components"
                        );
                    }
                }
            }
        }
    }

    /// The optimised engine and det-k-decomp agree on decidability for
    /// every k, and every witness passes the full validator.
    #[test]
    fn optimized_and_detk_agree(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let solver = LogK::sequential();
        for k in 1..=3usize {
            let a = solver.decompose(&hg, k, &ctrl).unwrap();
            let b = detk::decide_detk(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a.is_some(), b, "k={}", k);
            if let Some(d) = a {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
        }
    }

    /// GYO acyclicity coincides with hw ≤ 1.
    #[test]
    fn gyo_matches_width_one(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let acyclic = hypergraph::is_acyclic(&hg);
        let hd1 = LogK::sequential().decide(&hg, 1, &ctrl).unwrap();
        prop_assert_eq!(acyclic, hd1);
    }

    /// Monotonicity: if hw ≤ k then hw ≤ k+1 (search spaces nest).
    #[test]
    fn width_decisions_are_monotone(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let solver = LogK::sequential();
        let mut prev = false;
        for k in 1..=4usize {
            let now = solver.decide(&hg, k, &ctrl).unwrap();
            prop_assert!(!prev || now, "decision not monotone at k={}", k);
            prev = now;
        }
    }

    /// The HyperBench parser round-trips every hypergraph.
    #[test]
    fn hyperbench_roundtrip(hg in arb_hypergraph()) {
        let text = hypergraph::write_hyperbench(&hg);
        let back = hypergraph::parse_hyperbench(&text).unwrap();
        prop_assert_eq!(hg.num_edges(), back.num_edges());
        for e in hg.edge_ids() {
            prop_assert_eq!(hg.edge(e).len(), back.edge(e).len());
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(s in "\\PC*") {
        let _ = hypergraph::parse_hyperbench(&s);
        let _ = hypergraph::parse_pace(&s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Yannakakis evaluation agrees with the naive join on random
    /// databases over a cyclic query.
    #[test]
    fn yannakakis_matches_naive(
        tuples in prop::collection::vec(
            prop::collection::vec((0u64..5, 0u64..5), 1..20), 4..=4
        )
    ) {
        use cqeval::{evaluate_naive, evaluate_yannakakis, ConjunctiveQuery, Database};
        let q = ConjunctiveQuery::parse("r0(a,b), r1(b,c), r2(c,d), r3(d,a)").unwrap();
        let mut db = Database::new();
        for (i, rel) in tuples.iter().enumerate() {
            db.insert(
                &format!("r{i}"),
                rel.iter().map(|&(x, y)| vec![x, y]).collect(),
            );
        }
        let hg = q.hypergraph();
        let ctrl = Control::unlimited();
        let hd = LogK::sequential().decompose(&hg, 2, &ctrl).unwrap().unwrap();
        let naive = evaluate_naive(&q, &db).unwrap();
        let yann = evaluate_yannakakis(&q, &db, &hd).unwrap();
        prop_assert_eq!(naive, yann);
    }
}
