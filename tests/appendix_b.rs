//! Appendix B of the paper as an executable integration test: every
//! engine must certify `hw(C_10) = 2`, and the SAT baseline must agree on
//! `ghw(C_10) = 2`.

use decomp::{is_normal_form, validate_hd_width, Control};
use hypergraph::Hypergraph;
use logk::LogK;

fn cycle10() -> Hypergraph {
    let edges: Vec<Vec<u32>> = (0..10).map(|i| vec![i, (i + 1) % 10]).collect();
    Hypergraph::from_edge_lists(&edges)
}

#[test]
fn every_hd_engine_certifies_width_two() {
    let hg = cycle10();
    let ctrl = Control::unlimited();
    let engines: Vec<(&str, LogK)> = vec![
        ("basic", LogK::basic()),
        ("optimized", LogK::sequential()),
        ("parallel", LogK::parallel(2)),
        ("hybrid", LogK::hybrid(2)),
    ];
    for (name, solver) in engines {
        assert!(
            solver.decompose(&hg, 1, &ctrl).unwrap().is_none(),
            "{name}: C_10 must not have width 1"
        );
        let hd = solver
            .decompose(&hg, 2, &ctrl)
            .unwrap()
            .unwrap_or_else(|| panic!("{name}: hw(C_10) = 2"));
        validate_hd_width(&hg, &hd, 2).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn detk_agrees_on_the_running_example() {
    let hg = cycle10();
    let ctrl = Control::unlimited();
    assert!(detk::decompose_detk(&hg, 1, &ctrl).unwrap().is_none());
    let hd = detk::decompose_detk(&hg, 2, &ctrl).unwrap().unwrap();
    validate_hd_width(&hg, &hd, 2).unwrap();
}

#[test]
fn sat_baseline_finds_ghw_two() {
    let hg = cycle10();
    let ctrl = Control::unlimited();
    let (ghw, witness) = htdsat::optimal_ghw(&hg, 5, &ctrl).unwrap().unwrap();
    assert_eq!(ghw, 2, "ghw(C_10) = hw(C_10) = 2 (paper §5.2)");
    assert!(htdsat::check_witness(&hg, &witness, 2));
}

#[test]
fn balanced_ghd_search_succeeds_at_two() {
    let hg = cycle10();
    let ctrl = Control::unlimited();
    let (w, d) = ghd::minimal_width_ghd(&hg, 4, &ctrl).unwrap().unwrap();
    assert_eq!(w, 2);
    decomp::validate_ghd(&hg, &d).unwrap();
}

#[test]
fn algorithm1_witness_is_normal_form() {
    // The completeness proof searches over normal-form HDs
    // (Definition 3.5); Algorithm 1's witness construction should land in
    // normal form on the running example.
    let hg = cycle10();
    let ctrl = Control::unlimited();
    let hd = logk::decompose_basic(&hg, 2, &ctrl).unwrap().unwrap();
    assert!(is_normal_form(&hg, &hd));
}

#[test]
fn figure2a_hd_shape_is_reachable() {
    // Figure 2a's witness: the path u1..u8 with λ(u_i) = {R1, R_{i+1}},
    // χ(u_i) = {x1, x_{i+1}, x_{i+2}} — verify it is a valid width-2 HD,
    // i.e. the paper's hand construction passes our validator.
    use hypergraph::{Edge, Vertex, VertexSet};
    let hg = cycle10();
    let n = hg.num_vertices();
    let vs = |ids: &[u32]| VertexSet::from_iter(n, ids.iter().map(|&v| Vertex(v)));
    let mut d = decomp::Decomposition::singleton(vec![Edge(0), Edge(1)], vs(&[0, 1, 2]));
    let mut parent = d.root();
    for i in 2..=8u32 {
        parent = d.add_child(parent, vec![Edge(0), Edge(i)], vs(&[0, i, i + 1]));
    }
    validate_hd_width(&hg, &d, 2).unwrap();
    assert!(is_normal_form(&hg, &d));
    assert_eq!(d.num_nodes(), 8);
}
