//! Candidate-order heuristics, phase 2: the degree/coverage-based
//! `CandidateOrder::DegreeCoverage` knob against the arity-descending
//! default.
//!
//! Both orders only permute the candidate enumeration, so verdicts (and
//! witness validity) must be identical — pinned differentially here over
//! a corpus slice and the structured families. The *point* of an order is
//! the `lambda_c_rejected`/`lambda_p_rejected` cut it buys per workload
//! family; the `#[ignore]`d reporter at the bottom prints that table (the
//! numbers recorded in BENCHMARKS.md come from it):
//!
//! ```text
//! cargo test --release --test candidate_order -- --ignored --nocapture
//! ```

use decomp::{validate_hd_width, Control};
use logk::{CandidateOrder, LogK};
use workloads::{families, hyperbench_like, CorpusConfig};

/// Corpus slice: the degree/coverage order decides exactly like the
/// arity order, and its witnesses validate.
#[test]
fn degree_coverage_order_matches_arity_on_corpus() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 120.0,
    });
    let ctrl = Control::unlimited();
    let arity = LogK::sequential();
    let degree = LogK::sequential().with_candidate_order(CandidateOrder::DegreeCoverage);
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let da = arity.decide(&inst.hg, k, &ctrl).unwrap();
            let dd = degree.decompose(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                da,
                dd.is_some(),
                "orders disagree on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dd {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if da {
                break;
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");
}

/// Structured families at their exact widths, both verdict polarities.
#[test]
fn degree_coverage_order_matches_arity_on_families() {
    let ctrl = Control::unlimited();
    let degree = LogK::sequential().with_candidate_order(CandidateOrder::DegreeCoverage);
    let arity = LogK::sequential();
    for (name, hg, k_true) in [
        ("grid3x3", families::grid(3, 3), 2usize),
        ("grid4x4", families::grid(4, 4), 3),
        ("cycle12", families::cycle(12), 2),
        ("chain20a3", families::chain(20, 3), 2),
        ("csp60", families::random_csp(5, 60, 45, 4), 3),
    ] {
        for k in (k_true.saturating_sub(1).max(1))..=k_true {
            let da = arity.decide(&hg, k, &ctrl).unwrap();
            let dd = degree.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(da, dd.is_some(), "orders disagree on {name} at k={k}");
            if let Some(d) = &dd {
                validate_hd_width(&hg, d, k).unwrap();
            }
        }
    }
}

/// Reporter behind the BENCHMARKS.md table: per family and order, the
/// rejected-candidate counters of the full (failing k−1 + succeeding k)
/// width search. Run with `--ignored --nocapture`.
#[test]
#[ignore = "reporter for BENCHMARKS.md, not an assertion"]
fn report_rejected_candidate_cut_per_family() {
    let ctrl = Control::unlimited();
    println!(
        "{:<12} {:>2} | {:>12} {:>12} | {:>12} {:>12} | cut",
        "family", "k", "λc rej (ari)", "λp rej (ari)", "λc rej (deg)", "λp rej (deg)"
    );
    for (name, hg, k_true) in [
        ("grid4x4", families::grid(4, 4), 3usize),
        ("grid4x5", families::grid(4, 5), 3),
        ("cycle16", families::cycle(16), 2),
        ("chain24a3", families::chain(24, 3), 2),
        ("snowflake", families::snowflake(3, 4), 3),
        ("csp60", families::random_csp(5, 60, 45, 4), 3),
        ("csp100", families::random_csp(7, 120, 100, 4), 3),
    ] {
        let mut row = [[0u64; 2]; 2];
        for (i, order) in [CandidateOrder::Arity, CandidateOrder::DegreeCoverage]
            .into_iter()
            .enumerate()
        {
            let solver = LogK::sequential().with_candidate_order(order);
            // Full width search up to the known optimum, like the sweeps.
            for k in 1..=k_true {
                let (_, stats) = solver.decompose_with_stats(&hg, k, &ctrl).unwrap();
                row[i][0] += stats.lambda_c_rejected;
                row[i][1] += stats.lambda_p_rejected;
            }
        }
        let tot = |r: [u64; 2]| r[0] + r[1];
        let (a, d) = (tot(row[0]), tot(row[1]));
        let cut = if a > 0 {
            100.0 * (a as f64 - d as f64) / a as f64
        } else {
            0.0
        };
        println!(
            "{:<12} {:>2} | {:>12} {:>12} | {:>12} {:>12} | {:+.1}%",
            name, k_true, row[0][0], row[0][1], row[1][0], row[1][1], cut
        );
    }
}
