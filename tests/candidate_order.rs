//! Candidate-order heuristics: the degree/coverage-based
//! `CandidateOrder::DegreeCoverage` knob and the per-subproblem
//! `CandidateOrder::ConnCoverage` knob against the arity-descending
//! default.
//!
//! All orders only permute the candidate enumeration, so verdicts (and
//! witness validity) must be identical — pinned differentially here over
//! a corpus slice and the structured families. The *point* of an order is
//! the `lambda_c_rejected`/`lambda_p_rejected` cut it buys per workload
//! family; the `#[ignore]`d reporter at the bottom prints that table (the
//! numbers recorded in BENCHMARKS.md come from it):
//!
//! ```text
//! cargo test --release --test candidate_order -- --ignored --nocapture
//! ```

use decomp::{validate_hd_width, Control};
use logk::{CandidateOrder, LogK};
use workloads::{families, hyperbench_like, wide_corpus, CorpusConfig, WideConfig};

/// Corpus slice: the degree/coverage order decides exactly like the
/// arity order, and its witnesses validate.
#[test]
fn degree_coverage_order_matches_arity_on_corpus() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 120.0,
    });
    let ctrl = Control::unlimited();
    let arity = LogK::sequential();
    let degree = LogK::sequential().with_candidate_order(CandidateOrder::DegreeCoverage);
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let da = arity.decide(&inst.hg, k, &ctrl).unwrap();
            let dd = degree.decompose(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                da,
                dd.is_some(),
                "orders disagree on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dd {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if da {
                break;
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");
}

/// Structured families at their exact widths, both verdict polarities.
#[test]
fn degree_coverage_order_matches_arity_on_families() {
    let ctrl = Control::unlimited();
    let degree = LogK::sequential().with_candidate_order(CandidateOrder::DegreeCoverage);
    let arity = LogK::sequential();
    for (name, hg, k_true) in [
        ("grid3x3", families::grid(3, 3), 2usize),
        ("grid4x4", families::grid(4, 4), 3),
        ("cycle12", families::cycle(12), 2),
        ("chain20a3", families::chain(20, 3), 2),
        ("csp60", families::random_csp(5, 60, 45, 4), 3),
    ] {
        for k in (k_true.saturating_sub(1).max(1))..=k_true {
            let da = arity.decide(&hg, k, &ctrl).unwrap();
            let dd = degree.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(da, dd.is_some(), "orders disagree on {name} at k={k}");
            if let Some(d) = &dd {
                validate_hd_width(&hg, d, k).unwrap();
            }
        }
    }
}

/// Corpus slice + structured families: the per-subproblem connector-
/// coverage order decides exactly like the arity order, and its
/// witnesses validate. (When the connector is empty — at the root and on
/// detached components — the order degenerates to the arity rank, so the
/// differential covers both branches.)
#[test]
fn conn_coverage_order_matches_arity() {
    let ctrl = Control::unlimited();
    let arity = LogK::sequential();
    let conn = LogK::sequential().with_candidate_order(CandidateOrder::ConnCoverage);
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 120.0,
    });
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let da = arity.decide(&inst.hg, k, &ctrl).unwrap();
            let dc = conn.decompose(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                da,
                dc.is_some(),
                "orders disagree on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dc {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if da {
                break;
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");

    for (name, hg, k_true) in [
        ("grid3x3", families::grid(3, 3), 2usize),
        ("grid4x4", families::grid(4, 4), 3),
        ("cycle12", families::cycle(12), 2),
        ("chain20a3", families::chain(20, 3), 2),
        ("csp60", families::random_csp(5, 60, 45, 4), 3),
    ] {
        for k in (k_true.saturating_sub(1).max(1))..=k_true {
            let da = arity.decide(&hg, k, &ctrl).unwrap();
            let dc = conn.decompose(&hg, k, &ctrl).unwrap();
            assert_eq!(da, dc.is_some(), "orders disagree on {name} at k={k}");
            if let Some(d) = &dc {
                validate_hd_width(&hg, d, k).unwrap();
            }
        }
    }
}

/// Wide corpus at the certified widths: connector-coverage ordering must
/// not change any verdict where connectors span many bitset words (the
/// per-subproblem sort keys on `|e ∩ Conn|` computed by the fused count
/// kernel).
#[test]
fn conn_coverage_order_matches_arity_on_wide_corpus() {
    let ctrl = Control::unlimited();
    let arity = LogK::sequential();
    let conn = LogK::sequential().with_candidate_order(CandidateOrder::ConnCoverage);
    let mut checked = 0usize;
    for inst in wide_corpus(WideConfig::default()) {
        let Some(k) = inst.width_upper else { continue };
        let da = arity.decide(&inst.hg, k, &ctrl).unwrap();
        let dc = conn.decompose(&inst.hg, k, &ctrl).unwrap();
        assert_eq!(
            da,
            dc.is_some(),
            "orders disagree on {} at k={k}",
            inst.name
        );
        if let Some(d) = &dc {
            validate_hd_width(&inst.hg, d, k).unwrap();
        }
        checked += 1;
    }
    assert!(checked >= 5, "wide corpus slice unexpectedly small");
}

/// Reporter behind the BENCHMARKS.md table: per family and order, the
/// rejected-candidate counters of the full (failing k−1 + succeeding k)
/// width search. Run with `--ignored --nocapture`.
#[test]
#[ignore = "reporter for BENCHMARKS.md, not an assertion"]
fn report_rejected_candidate_cut_per_family() {
    let ctrl = Control::unlimited();
    let orders = [
        ("arity", CandidateOrder::Arity),
        ("degree", CandidateOrder::DegreeCoverage),
        ("conn", CandidateOrder::ConnCoverage),
    ];
    println!(
        "{:<14} {:>2} {:<8} | {:>12} {:>12} | cut vs arity",
        "family", "k", "order", "λc rejected", "λp rejected"
    );
    let mut wide: Vec<(String, hypergraph::Hypergraph, usize)> = vec![
        ("grid4x4".into(), families::grid(4, 4), 3usize),
        ("grid4x5".into(), families::grid(4, 5), 3),
        ("cycle16".into(), families::cycle(16), 2),
        ("chain24a3".into(), families::chain(24, 3), 2),
        ("snowflake".into(), families::snowflake(3, 4), 3),
        ("csp60".into(), families::random_csp(5, 60, 45, 4), 3),
        ("csp100".into(), families::random_csp(7, 120, 100, 4), 3),
    ];
    for inst in wide_corpus(WideConfig::default()) {
        if let Some(k) = inst.width_upper {
            wide.push((inst.name, inst.hg, k));
        }
    }
    for (name, hg, k_true) in wide {
        let mut base = 0u64;
        for (label, order) in orders {
            let solver = LogK::sequential().with_candidate_order(order);
            let mut row = [0u64; 2];
            // Full width search up to the known optimum, like the sweeps.
            for k in 1..=k_true {
                let (_, stats) = solver.decompose_with_stats(&hg, k, &ctrl).unwrap();
                row[0] += stats.lambda_c_rejected;
                row[1] += stats.lambda_p_rejected;
            }
            let tot = row[0] + row[1];
            let cut = if label == "arity" {
                base = tot;
                0.0
            } else if base > 0 {
                100.0 * (base as f64 - tot as f64) / base as f64
            } else {
                0.0
            };
            println!(
                "{:<14} {:>2} {:<8} | {:>12} {:>12} | {:+.1}%",
                name, k_true, label, row[0], row[1], cut
            );
        }
    }
}
