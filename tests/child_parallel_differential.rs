//! Differential tests for sibling-subproblem (below-children)
//! parallelism: fanning the component loops of `try_as_root`/`finish_pair`
//! out on the pool must be *observationally identical* to recursing
//! sequentially — same decidability for every k, and every witness passes
//! the full HD validator. The grain knob (`LogK::with_child_split`) only
//! changes where the work runs, never the answer.
//!
//! The suite compares three engines per instance: sequential, parallel
//! with child splitting pinned off (`with_child_split(usize::MAX, 0)` —
//! the λc race still runs), and parallel with an aggressive grain
//! (`with_child_split(2, 0)`) that splits every multi-component loop. The
//! acceptance test additionally asserts the new counters actually move on
//! a multi-component instance at 2 workers: `child_splits > 0`, every
//! join rebases its fragments, and the pool's steal counter shows the
//! second worker really participating.

use decomp::{validate_hd_width, Control};
use logk::LogK;
use proptest::prelude::*;
use workloads::{families, hyperbench_like, wide_corpus, CorpusConfig, WideConfig};

/// Parallel-children engines across the workloads corpus: identical
/// verdicts to the sequential engine and to the λc-race-only parallel
/// engine, valid witnesses, and the children-pinned engine never splits.
#[test]
fn corpus_par_children_matches_seq_children() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let seq = LogK::sequential();
    // λc race on, children sequential: the pre-fork/merge parallel engine.
    let par_pinned = LogK::parallel(2).with_child_split(usize::MAX, 0);
    // Aggressive grain: every multi-component child loop splits.
    let par_split = LogK::parallel(2).with_child_split(2, 0);

    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 40) {
        for k in 1..=4usize {
            let (ds, _) = seq.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let (dp, sp) = par_pinned.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let (dc, _) = par_split.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                ds.is_some(),
                dp.is_some(),
                "children-pinned parallel disagrees on {} at k={k}",
                inst.name
            );
            assert_eq!(
                ds.is_some(),
                dc.is_some(),
                "children-split parallel disagrees on {} at k={k}",
                inst.name
            );
            assert_eq!(
                sp.child_splits, 0,
                "with_child_split(usize::MAX, _) must pin the child loops sequential"
            );
            for d in [&ds, &dp, &dc].into_iter().flatten() {
                validate_hd_width(&inst.hg, d, k)
                    .unwrap_or_else(|e| panic!("invalid witness on {} at k={k}: {e:?}", inst.name));
            }
            if ds.is_some() {
                break; // width found; larger k adds nothing new
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");
}

/// The acceptance workload: a disjoint union splits into one
/// `[λc]`-component per part at the root (the root connector is empty),
/// so every root-mode candidate drives the sibling fan-out. At 2 workers
/// with the default grain the engine must actually split
/// (`child_splits > 0`), fold every successful join's fragments back
/// under the parent arena (`arena_rebases > 0`), and move the pool's
/// steal counter — while returning the exact verdict and a valid witness.
/// Pinning the grain to `usize::MAX` on the same instance keeps the
/// verdict and zeroes the splits.
#[test]
fn disconnected_instance_splits_children_and_steals() {
    let hg = families::disjoint_union(&[families::grid(4, 4), families::grid(4, 4)]);
    let ctrl = Control::unlimited();

    let (d, stats) = LogK::parallel(2)
        .decompose_with_stats(&hg, 3, &ctrl)
        .unwrap();
    let d = d.expect("hw(grid ⊎ grid) = 3");
    validate_hd_width(&hg, &d, 3).unwrap();
    assert!(
        stats.child_splits > 0,
        "multi-component instance at 2 workers must fan its children out"
    );
    assert!(
        stats.arena_rebases > 0,
        "successful parallel joins must fold branch fragments back"
    );
    assert!(
        stats.sched_steals > 0,
        "the second worker must actually steal sibling subproblems"
    );

    let (d_pinned, s_pinned) = LogK::parallel(2)
        .with_child_split(usize::MAX, 0)
        .decompose_with_stats(&hg, 3, &ctrl)
        .unwrap();
    validate_hd_width(&hg, &d_pinned.expect("verdict is grain-independent"), 3).unwrap();
    assert_eq!(s_pinned.child_splits, 0);
    assert_eq!(s_pinned.arena_rebases, 0);

    // One worker: the split gate (`current_num_threads() > 1`) keeps the
    // sequential fast path even with the default grain.
    let (d1, s1) = LogK::parallel(1)
        .decompose_with_stats(&hg, 3, &ctrl)
        .unwrap();
    validate_hd_width(&hg, &d1.expect("verdict is worker-independent"), 3).unwrap();
    assert_eq!(s1.child_splits, 0, "1-worker pools must not split children");
}

/// The refutation side: at `k = 1` the union of two cycles is
/// undecomposable, so every parallel join ends in a definitive child
/// rejection — the fail-fast path. Verdicts must agree and the cancel
/// counter may only move when splits happened.
#[test]
fn rejection_verdicts_agree_under_child_parallelism() {
    let hg = families::disjoint_union(&[families::cycle(8), families::cycle(8)]);
    let ctrl = Control::unlimited();
    let (d, stats) = LogK::parallel(2)
        .with_child_split(2, 0)
        .decompose_with_stats(&hg, 1, &ctrl)
        .unwrap();
    assert!(d.is_none(), "hw(C8 ⊎ C8) = 2, so k = 1 must refute");
    let (ds, _) = LogK::sequential()
        .decompose_with_stats(&hg, 1, &ctrl)
        .unwrap();
    assert!(ds.is_none());
    if stats.child_splits == 0 {
        assert_eq!(stats.child_cancels, 0, "cancels require splits");
    }
    // And the decomposable width still agrees.
    let dp = LogK::parallel(2)
        .with_child_split(2, 0)
        .decide(&hg, 2, &ctrl);
    let dq = LogK::sequential().decide(&hg, 2, &ctrl);
    assert_eq!(dp.unwrap(), dq.unwrap());
}

/// Wide corpus under child parallelism: the fork/merge arena discipline
/// moves multi-word bitsets across branch scratch spaces; verdicts and
/// witnesses must match the sequential engine on every wide instance.
/// A disjoint union of two wide bands additionally forces the sibling
/// fan-out itself to run at many-word widths.
#[test]
fn wide_corpus_par_children_matches_sequential() {
    let ctrl = Control::unlimited();
    let seq = LogK::sequential();
    let par_split = LogK::parallel(2).with_child_split(2, 0);
    let mut checked = 0usize;
    for inst in wide_corpus(WideConfig::default()) {
        let Some(k) = inst.width_upper else { continue };
        let (ds, _) = seq.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
        let (dp, _) = par_split.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
        assert_eq!(
            ds.is_some(),
            dp.is_some(),
            "children-split parallel disagrees on {} at k={k}",
            inst.name
        );
        for d in [&ds, &dp].into_iter().flatten() {
            validate_hd_width(&inst.hg, d, k)
                .unwrap_or_else(|e| panic!("invalid witness on {}: {e:?}", inst.name));
        }
        checked += 1;
    }
    assert!(checked >= 5, "wide corpus slice unexpectedly small");

    // 524 vertices across two components: the root fan-out itself.
    let hg =
        families::disjoint_union(&[families::band_cq(130, 4, 2), families::band_cq(130, 4, 2)]);
    let (d, stats) = LogK::parallel(2)
        .with_child_split(2, 0)
        .decompose_with_stats(&hg, 1, &ctrl)
        .unwrap();
    validate_hd_width(&hg, &d.expect("bands are acyclic"), 1).unwrap();
    let ds = seq.decide(&hg, 1, &ctrl).unwrap();
    assert!(ds);
    if stats.child_splits == 0 {
        assert_eq!(stats.child_cancels, 0, "cancels require splits");
    }
}

fn arb_hypergraph() -> impl Strategy<Value = hypergraph::Hypergraph> {
    prop::collection::vec(prop::collection::vec(0u32..12, 2..4), 1..10)
        .prop_map(|edges| hypergraph::Hypergraph::from_edge_lists(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary small hypergraphs (the vertex range leaves room for
    /// disconnected instances): sequential, children-pinned parallel and
    /// aggressively-split parallel decisions coincide for every k, and
    /// all witnesses validate.
    #[test]
    fn child_split_decisions_match_sequential(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let seq = LogK::sequential();
        let par_pinned = LogK::parallel(2).with_child_split(usize::MAX, 0);
        let par_split = LogK::parallel(2).with_child_split(2, 0);
        for k in 1..=3usize {
            let a = seq.decompose(&hg, k, &ctrl).unwrap();
            let b = par_pinned.decompose(&hg, k, &ctrl).unwrap();
            let c = par_split.decompose(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a.is_some(), b.is_some(), "children-pinned at k={}", k);
            prop_assert_eq!(a.is_some(), c.is_some(), "children-split at k={}", k);
            for d in [&a, &b, &c].into_iter().flatten() {
                prop_assert!(validate_hd_width(&hg, d, k).is_ok());
            }
        }
    }
}
