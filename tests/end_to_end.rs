//! Cross-crate integration: solvers must agree with each other and with
//! certified ground truth across the workload generator's families.

use decomp::{validate_hd_width, Control};
use hypergraph::is_acyclic;
use logk::LogK;
use workloads::{hyperbench_like, known_width, CorpusConfig, KnownWidthConfig};

#[test]
fn solvers_agree_on_a_small_corpus() {
    // A tiny deterministic corpus slice; instances stay small enough that
    // every method terminates without a timeout.
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 150.0,
    });
    let ctrl = Control::unlimited();
    let logk_solver = LogK::hybrid(2);
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 22) {
        let k_max = 5;
        let ours = logk_solver.minimal_width(&inst.hg, k_max, &ctrl).unwrap();
        let theirs = (1..=k_max).find_map(|k| {
            detk::decompose_detk(&inst.hg, k, &ctrl)
                .unwrap()
                .map(|d| (k, d))
        });
        match (&ours, &theirs) {
            (Some((a, da)), Some((b, db))) => {
                assert_eq!(a, b, "{}: hybrid={a} detk={b}", inst.name);
                validate_hd_width(&inst.hg, da, *a).unwrap();
                validate_hd_width(&inst.hg, db, *b).unwrap();
            }
            (None, None) => {}
            _ => panic!("{}: solvers disagree on solvability", inst.name),
        }
        if let (Some((w, _)), Some(upper)) = (&ours, inst.width_upper) {
            assert!(
                *w <= upper,
                "{}: hw {w} above certified bound {upper}",
                inst.name
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "corpus slice too small to be meaningful");
}

#[test]
fn acyclicity_equals_width_one() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 99,
        scale: 1.0 / 400.0,
    });
    let ctrl = Control::unlimited();
    let solver = LogK::sequential();
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        let gyo = is_acyclic(&inst.hg);
        let hd1 = solver.decide(&inst.hg, 1, &ctrl).unwrap();
        assert_eq!(gyo, hd1, "{}: GYO and hw<=1 disagree", inst.name);
    }
}

#[test]
fn known_width_instances_solve_within_bound() {
    let ctrl = Control::unlimited();
    let solver = LogK::hybrid(2);
    for seed in 0..8u64 {
        for k in 1..=3usize {
            let (hg, witness) = known_width(KnownWidthConfig::new(seed * 31 + 7, 25, k));
            validate_hd_width(&hg, &witness, k).unwrap();
            let (w, d) = solver
                .minimal_width(&hg, k + 1, &ctrl)
                .unwrap()
                .expect("must solve within k+1");
            assert!(w <= k, "seed={seed} k={k}: found {w}");
            validate_hd_width(&hg, &d, w).unwrap();
        }
    }
}

#[test]
fn ghw_lower_bounds_hw_everywhere() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 55,
        scale: 1.0 / 500.0,
    });
    let ctrl = Control::unlimited();
    let solver = LogK::sequential();
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 14) {
        let hw = solver.minimal_width(&inst.hg, 4, &ctrl).unwrap();
        let ghw = htdsat::optimal_ghw(&inst.hg, 4, &ctrl).ok().flatten();
        if let (Some((hw, _)), Some((ghw, _))) = (hw, ghw) {
            assert!(ghw <= hw, "{}: ghw {ghw} > hw {hw}", inst.name);
        }
    }
}

#[test]
fn timeouts_never_return_answers() {
    let (hg, _) = known_width(KnownWidthConfig::new(3, 60, 4));
    let ctrl = Control::with_timeout(std::time::Duration::from_millis(1));
    // Either an Err(timeout) or a very fast honest answer — never a wrong
    // "no".
    match LogK::hybrid(2).decompose(&hg, 4, &ctrl) {
        Ok(Some(d)) => validate_hd_width(&hg, &d, 4).unwrap(),
        Ok(None) => panic!("width-4 instance declared unsolvable under timeout"),
        Err(_) => {}
    }
}
