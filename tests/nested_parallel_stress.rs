//! Nested-parallelism stress: the full hybrid configuration — parallel
//! `log-k-decomp` branching with `det-k-decomp` handoffs — run under a
//! deliberately tiny 2-thread pool, the regime where the vendored
//! rayon's historical oversubscription bug fired (workers spawned by an
//! outer `find_map_any` did not inherit the installed bound, so nested
//! races fell back to `available_parallelism()` and multiplied their
//! thread count). With the shared-budget fix, nested races draw from
//! one global allowance; this suite pins that the whole engine stack
//! stays correct — and actually bounded — in that regime.
//!
//! CI additionally re-runs the *entire* test suite with
//! `RAYON_NUM_THREADS=2` (the ambient bound every unpooled parallel
//! call now inherits), so every parallel test doubles as a stress test.

use std::sync::atomic::{AtomicUsize, Ordering};

use decomp::{validate_hd_width, Control};
use logk::LogK;
use rayon::prelude::*;
use workloads::{families, hyperbench_like, CorpusConfig};

/// Corpus sweep with hybrid handoffs enabled under a 2-thread pool:
/// verdicts match the sequential engine, witnesses validate.
#[test]
fn hybrid_under_two_thread_pool_matches_sequential() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 99,
        scale: 1.0 / 120.0,
    });
    let ctrl = Control::unlimited();
    let hybrid = LogK::hybrid(2);
    let seq = LogK::sequential();
    let mut handoffs = 0u64;
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let (dh, sh) = hybrid.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let ds = seq.decide(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                dh.is_some(),
                ds,
                "hybrid(2) and sequential disagree on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dh {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            handoffs += sh.detk_handoffs;
            if dh.is_some() {
                break;
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");
    assert!(
        handoffs > 0,
        "stress run must actually exercise det-k handoffs"
    );
}

/// The grid workload (deep recursion, heavy λ racing) with hybrid
/// handoffs under a 2-thread pool — the heaviest nested-parallel shape
/// the engine produces.
#[test]
fn grid_hybrid_under_two_thread_pool() {
    let ctrl = Control::unlimited();
    let hg = families::grid(4, 4);
    let d = LogK::hybrid(2)
        .decompose(&hg, 3, &ctrl)
        .unwrap()
        .expect("the 4×4 grid has hw = 3");
    validate_hd_width(&hg, &d, 3).unwrap();
}

/// End-to-end pin of the oversubscription fix at the integration level:
/// engine-shaped nested `find_map_any` races under a 2-thread pool never
/// have more than 2 innermost closures live at once. (The unit-level
/// regression test lives in `vendor/rayon`; this one exercises the same
/// path through the workspace's actual dependency graph.)
#[test]
fn nested_find_map_any_stays_within_installed_bound() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let live = AtomicUsize::new(0);
    let max_seen = AtomicUsize::new(0);
    pool.install(|| {
        (0..6usize).into_par_iter().find_map_any(|_| {
            (0..6usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        })
    });
    let max = max_seen.load(Ordering::SeqCst);
    assert!(max >= 1, "the race must have run at all");
    assert!(
        max <= 2,
        "nested races oversubscribed the 2-thread pool: {max} live workers"
    );
}
