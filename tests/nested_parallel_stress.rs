//! Nested-parallelism stress: the full hybrid configuration — parallel
//! `log-k-decomp` branching with `det-k-decomp` handoffs — run under a
//! deliberately tiny 2-worker pool, the regime where the old vendored
//! rayon's oversubscription bug fired (workers spawned by an outer
//! `find_map_any` did not inherit the installed bound, so nested races
//! fell back to `available_parallelism()` and multiplied their thread
//! count). Under the work-stealing runtime the bound holds by
//! construction — only a pool's workers execute its jobs, and nested
//! `join` races stay on those workers — but it remains the load-bearing
//! invariant, so this suite keeps pinning it end to end: engine-shaped
//! nested races, hybrid det-k handoffs on pool workers, and the
//! steal/park counters the solver surfaces.
//!
//! CI additionally re-runs the *entire* test suite with
//! `RAYON_NUM_THREADS=2` and `=1` (the ambient pool size every unpooled
//! parallel call inherits; `=1` is the fully sequential degenerate), so
//! every parallel test doubles as a stress test.

use std::sync::atomic::{AtomicUsize, Ordering};

use decomp::{validate_hd_width, Control};
use logk::LogK;
use rayon::prelude::*;
use workloads::{families, hyperbench_like, CorpusConfig};

/// Corpus sweep with hybrid handoffs enabled under a 2-thread pool:
/// verdicts match the sequential engine, witnesses validate.
#[test]
fn hybrid_under_two_thread_pool_matches_sequential() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 99,
        scale: 1.0 / 120.0,
    });
    let ctrl = Control::unlimited();
    let hybrid = LogK::hybrid(2);
    let seq = LogK::sequential();
    let mut handoffs = 0u64;
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let (dh, sh) = hybrid.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let ds = seq.decide(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                dh.is_some(),
                ds,
                "hybrid(2) and sequential disagree on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dh {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            handoffs += sh.detk_handoffs;
            if dh.is_some() {
                break;
            }
        }
        checked += 1;
    }
    assert!(checked > 10, "corpus slice unexpectedly small");
    assert!(
        handoffs > 0,
        "stress run must actually exercise det-k handoffs"
    );
}

/// The grid workload (deep recursion, heavy λ racing) with hybrid
/// handoffs under a 2-thread pool — the heaviest nested-parallel shape
/// the engine produces.
#[test]
fn grid_hybrid_under_two_thread_pool() {
    let ctrl = Control::unlimited();
    let hg = families::grid(4, 4);
    let d = LogK::hybrid(2)
        .decompose(&hg, 3, &ctrl)
        .unwrap()
        .expect("the 4×4 grid has hw = 3");
    validate_hd_width(&hg, &d, 3).unwrap();
}

/// End-to-end pin of the oversubscription fix at the integration level:
/// engine-shaped nested `find_map_any` races under a 2-thread pool never
/// have more than 2 innermost closures live at once. (The unit-level
/// regression test lives in `vendor/rayon`; this one exercises the same
/// path through the workspace's actual dependency graph.)
#[test]
fn nested_find_map_any_stays_within_installed_bound() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let live = AtomicUsize::new(0);
    let max_seen = AtomicUsize::new(0);
    pool.install(|| {
        (0..6usize).into_par_iter().find_map_any(|_| {
            (0..6usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        })
    });
    let max = max_seen.load(Ordering::SeqCst);
    assert!(max >= 1, "the race must have run at all");
    assert!(
        max <= 2,
        "nested races oversubscribed the 2-thread pool: {max} live workers"
    );
}

/// Same bound for the *ambient* pool (no installed pool): nested races
/// through the workspace dependency graph stay within `RAYON_NUM_THREADS`
/// — this is what the `=1`/`=2` CI jobs pin across the whole suite.
#[test]
fn ambient_nested_races_stay_within_env_bound() {
    let ambient = rayon::current_num_threads();
    let live = AtomicUsize::new(0);
    let max_seen = AtomicUsize::new(0);
    (0..6usize).into_par_iter().find_map_any(|_| {
        (0..6usize).into_par_iter().find_map_any(|_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
            None::<()>
        })
    });
    let max = max_seen.load(Ordering::SeqCst);
    assert!(max >= 1, "the race must have run at all");
    assert!(
        max <= ambient,
        "ambient nested races exceeded RAYON_NUM_THREADS={ambient}: {max} live"
    );
}

/// `join`/`scope` directly (the primitives the engine's λc race now runs
/// on): a scope full of spawns that each run nested joins never exceeds
/// the pool's two workers.
#[test]
fn scope_and_join_respect_the_pool_bound() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let live = AtomicUsize::new(0);
    let max_seen = AtomicUsize::new(0);
    let tick = || {
        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
        max_seen.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(1));
        live.fetch_sub(1, Ordering::SeqCst);
    };
    pool.scope(|s| {
        for _ in 0..8 {
            s.spawn(|_| {
                rayon::join(|| rayon::join(tick, tick), || rayon::join(tick, tick));
            });
        }
    });
    let max = max_seen.load(Ordering::SeqCst);
    assert!(
        (1..=2).contains(&max),
        "scope/join bound violated: {max} live"
    );
}

/// The hybrid driver under the stealing pool, with the scheduler's own
/// activity surfaced: per-solve pools report steal/park counters through
/// `SolveStats`, and a corpus of hybrid solves (det-k handoffs under
/// 2-worker pools) both stays correct and actually exercises the
/// scheduler (workers park when idle and/or steal published λc leads).
#[test]
fn hybrid_handoffs_surface_scheduler_counters() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 31,
        scale: 1.0 / 150.0,
    });
    let ctrl = Control::unlimited();
    let hybrid = LogK::hybrid(2);
    let mut handoffs = 0u64;
    let mut sched_activity = 0u64;
    let mut solves = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 24) {
        for k in 1..=3usize {
            let (d, stats) = hybrid.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            if let Some(d) = &d {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            handoffs += stats.detk_handoffs;
            sched_activity += stats.sched_steals + stats.sched_parks;
            solves += 1;
            if d.is_some() {
                break;
            }
        }
    }
    assert!(solves > 10, "corpus slice unexpectedly small");
    assert!(
        handoffs > 0,
        "stress run must actually exercise det-k handoffs"
    );
    assert!(
        sched_activity > 0,
        "2-worker pools over {solves} solves must report steals or parks"
    );
}
