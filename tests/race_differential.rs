//! Differential suite for the racing layer (PR 10): the speculative
//! k-sweep (`logk::width_bounds_racing`) must prove **exactly** the
//! bounds the sequential sweep proves — same `proven_lower`, same
//! `best_upper`, and a witness that passes the full HD validator — on
//! the structured and wide corpora, at every speculation window, and
//! under any ambient pool size (CI runs this at `RAYON_NUM_THREADS`
//! 1/2/4: the probes are plain threads, but the solvers they run draw on
//! the ambient pool when configured parallel).
//!
//! The suite also pins the portfolio's verdict agreement with the
//! engines it races, the loser-cancellation latency through the
//! existing interruption machinery, and — under
//! `--features fault-injection` — the containment story at the race
//! spawn/probe/join sites (a panicking racer is contained; the
//! surviving racers' verdicts still certify the result).

use std::sync::Arc;
use std::time::{Duration, Instant};

use decomp::{validate_hd_width, Control, Interrupted};
use logk::{width_bounds_racing, width_bounds_with, LogK};
use workloads::{families, hyperbench_like, wide_corpus, CorpusConfig, WideConfig};

/// Wall-clock budget before an external interruption in the latency
/// tests (mirrors `tests/interruption.rs`).
const BUDGET: Duration = Duration::from_millis(25);

/// Cooperative-stop latency bound (absorbs debug builds and loaded CI).
const LATENCY: Duration = Duration::from_secs(3);

/// Asserts racing bounds ≡ sequential bounds on one instance, for every
/// speculation window, including the witness's validity. Uninterrupted
/// sweeps only (no budgets): with every probe running to its verdict,
/// the ledger must reconstruct the sequential result exactly, whatever
/// order the verdicts landed in.
fn assert_race_matches_sequential(name: &str, hg: &hypergraph::Hypergraph, k_max: usize) {
    let ctrl = Arc::new(Control::unlimited());
    let seq = width_bounds_with(hg, k_max, &ctrl, None, |_| LogK::sequential());
    assert!(seq.interrupted.is_none(), "{name}: sequential sweep interrupted");
    for speculation in [2usize, 3] {
        let race = width_bounds_racing(hg, k_max, &ctrl, None, speculation, |_| {
            LogK::sequential()
        });
        assert_eq!(
            race.proven_lower, seq.proven_lower,
            "{name} spec{speculation}: lower bounds disagree"
        );
        assert_eq!(
            race.best_upper, seq.best_upper,
            "{name} spec{speculation}: upper bounds disagree"
        );
        assert_eq!(race.exact(), seq.exact(), "{name} spec{speculation}: exactness");
        assert!(
            race.interrupted.is_none(),
            "{name} spec{speculation}: uninterrupted sweep reported {:?}",
            race.interrupted
        );
        match (&race.witness, race.best_upper) {
            (Some(w), Some(u)) => assert!(
                validate_hd_width(hg, w, u).is_ok(),
                "{name} spec{speculation}: racing witness fails HD validation at {u}"
            ),
            (None, None) => {}
            (w, u) => panic!(
                "{name} spec{speculation}: witness/upper mismatch ({} vs {u:?})",
                w.is_some()
            ),
        }
    }
}

/// Racing ≡ sequential across the structured (HyperBench-shaped)
/// corpus, sequential probe solvers.
#[test]
fn structured_corpus_race_matches_sequential() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let mut checked = 0usize;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 36) {
        assert_race_matches_sequential(&inst.name, &inst.hg, 3);
        checked += 1;
    }
    assert!(checked >= 10, "corpus filter too aggressive ({checked})");
}

/// Racing ≡ sequential on the known-width wide instances (hundreds of
/// vertices, multi-word bitsets), probing up to one past the certified
/// width so the sweep both refutes and witnesses.
#[test]
fn wide_corpus_race_matches_sequential() {
    let corpus = wide_corpus(WideConfig::default());
    let mut checked = 0usize;
    for inst in &corpus {
        let Some(upper) = inst.width_upper else { continue };
        let k_max = (upper + 1).min(4);
        assert_race_matches_sequential(&inst.name, &inst.hg, k_max);
        checked += 1;
    }
    assert!(checked >= 3, "wide corpus had too few certified instances");
}

/// Racing ≡ sequential when the probe solvers themselves are parallel
/// (concurrent probes share the ambient pool) — the configuration the
/// service runs under `RAYON_NUM_THREADS` 2/4.
#[test]
fn race_with_parallel_probes_matches_sequential() {
    for (name, hg, k_max) in [
        ("grid4x4", families::grid(4, 4), 4usize),
        ("band_cycle80", families::band_cycle(80, 4, 2), 3),
        ("multi_component", families::disjoint_union(&[families::grid(3, 3), families::cycle(12)]), 3),
    ] {
        let ctrl = Arc::new(Control::unlimited());
        let seq = width_bounds_with(&hg, k_max, &ctrl, None, |_| LogK::sequential());
        let race = width_bounds_racing(&hg, k_max, &ctrl, None, 2, |_| LogK::parallel(2));
        assert_eq!(race.proven_lower, seq.proven_lower, "{name}: lower");
        assert_eq!(race.best_upper, seq.best_upper, "{name}: upper");
        if let (Some(w), Some(u)) = (&race.witness, race.best_upper) {
            assert!(validate_hd_width(&hg, w, u).is_ok(), "{name}: witness");
        }
    }
}

/// The satellite regression: a probe that hits its per-width slice
/// budget (or is cancelled by the race) is **undecided** — it must
/// never be recorded as a refutation, in the racing sweep or the
/// sequential one. On the 6×6 grid with a slice budget that k = 3
/// cannot meet, both sweeps must report `hw ∈ [3, 4]` — conflating the
/// timeout with a refutation would certify the false bound
/// `proven_lower = 4` (and `exact`ness that was never proven).
#[test]
fn timed_out_slice_is_never_a_refutation() {
    let hg = families::grid(6, 6);
    // k ≤ 2 resolve well inside the slice in any build; k = 3 blows it
    // in every build (~1.6 s even in release). Whether k = 4 witnesses
    // inside its own slice is build-speed-dependent (≈300 ms release,
    // seconds in debug), so the build-invariant regression assert is on
    // the lower bound: the k = 3 (and possibly k = 4) timeouts must
    // leave it at exactly 3.
    let budget = Some(Duration::from_millis(400));
    for speculation in [1usize, 2] {
        let ctrl = Arc::new(Control::unlimited());
        let b = width_bounds_racing(&hg, 4, &ctrl, budget, speculation, |_| LogK::sequential());
        assert_eq!(
            b.proven_lower, 3,
            "spec{speculation}: an undecided width moved the lower bound \
             (a timeout or cancellation was recorded as a refutation)"
        );
        assert!(
            !b.exact(),
            "spec{speculation}: exactness certified across an undecided width"
        );
        assert_eq!(
            b.interrupted,
            Some(Interrupted::Timeout),
            "spec{speculation}: the slice expiry must be recorded"
        );
        if let Some(u) = b.best_upper {
            assert_eq!(u, 4, "spec{speculation}: upper");
            let w = b.witness.expect("witness accompanies the upper bound");
            assert!(validate_hd_width(&hg, &w, 4).is_ok());
        }
    }
}

/// Portfolio race verdict ≡ the sequential engine's verdict, with the
/// winner's witness HD-validated, across widths spanning refutations
/// and witnesses.
#[test]
fn portfolio_verdict_matches_sequential_engine() {
    let port = portfolio::Portfolio::full(1);
    for (name, hg, ks) in [
        ("grid4x4", families::grid(4, 4), [2usize, 3]),
        ("band_cycle80", families::band_cycle(80, 4, 2), [1, 2]),
        ("cycle12", families::cycle(12), [1, 2]),
    ] {
        for k in ks {
            let ctrl = Arc::new(Control::unlimited());
            let expected = LogK::sequential()
                .decide(&hg, k, &ctrl)
                .expect("reference decision");
            let out = port.race(&hg, k, &ctrl);
            match out.verdict {
                Ok(Some(w)) => {
                    assert!(expected, "{name} k={k}: race witnessed a refuted width");
                    assert!(
                        validate_hd_width(&hg, &w, k).is_ok(),
                        "{name} k={k}: winning witness invalid"
                    );
                    assert!(out.winner.is_some());
                }
                Ok(None) => {
                    assert!(!expected, "{name} k={k}: race refuted a witnessed width");
                    assert!(out.winner.is_some());
                }
                Err(e) => panic!("{name} k={k}: unlimited race interrupted: {e:?}"),
            }
        }
    }
}

/// Loser cancellation, fast-winner side: on an instance where `logk`
/// refutes quickly but the SAT racer alone runs far longer, the race
/// must return as soon as the first definitive verdict lands and the
/// cancelled losers must show up in the counters — the whole race
/// bounded by the winner's time plus the cooperative-stop latency, not
/// by the slowest racer.
#[test]
fn portfolio_cancels_losers_within_latency() {
    // grid7x7 at k = 2: logk refutes in milliseconds; the SAT encoding
    // alone solves for ~300 ms release (`tests/interruption.rs` uses it
    // as its SAT-hard instance), far past LATENCY in debug builds.
    let hg = families::grid(7, 7);
    let port = portfolio::Portfolio::full(1);
    let ctrl = Arc::new(Control::unlimited());
    let t0 = Instant::now();
    let out = port.race(&hg, 2, &ctrl);
    let elapsed = t0.elapsed();
    assert!(matches!(out.verdict, Ok(None)), "k = 2 must be refuted");
    assert!(
        out.stats.race_cancels >= 1,
        "no loser was cancelled mid-flight: {:?}",
        out.stats
    );
    // The bound is deliberately loose (debug builds, loaded CI): the
    // claim is "winner + stop latency", not "slowest racer".
    assert!(
        elapsed < Duration::from_secs(30),
        "race gated on a loser: {elapsed:?}"
    );
}

/// Loser cancellation, external-interrupt side (the interruption-suite
/// idiom): cancelling the caller's control mid-race on an instance
/// where *every* racer runs ≫ LATENCY must interrupt the whole race
/// within the cooperative-stop latency.
#[test]
fn portfolio_race_cancels_externally_within_latency() {
    let hg = families::chorded_cycle(96, 48, 3);
    let port = portfolio::Portfolio::full(1);
    let ctrl = Arc::new(Control::unlimited());
    let killer = {
        let ctrl = Arc::clone(&ctrl);
        std::thread::spawn(move || {
            std::thread::sleep(BUDGET);
            ctrl.cancel();
        })
    };
    let t0 = Instant::now();
    let out = port.race(&hg, 3, &ctrl);
    let elapsed = t0.elapsed();
    killer.join().expect("killer thread");
    assert_eq!(
        out.verdict.err(),
        Some(Interrupted::Cancelled),
        "external cancellation must surface as Cancelled"
    );
    assert!(
        elapsed < BUDGET + LATENCY,
        "cancellation honoured only after {elapsed:?}"
    );
}

/// Same for the racing sweep: a deadline on the overall control stops
/// every in-flight probe within the cooperative-stop latency.
#[test]
fn racing_sweep_times_out_within_latency() {
    let hg = families::chorded_cycle(96, 48, 3);
    let ctrl = Arc::new(Control::with_timeout(BUDGET));
    let t0 = Instant::now();
    let b = width_bounds_racing(&hg, 4, &ctrl, None, 2, |_| LogK::sequential());
    let elapsed = t0.elapsed();
    assert_eq!(b.interrupted, Some(Interrupted::Timeout));
    assert!(
        elapsed < BUDGET + LATENCY,
        "sweep timeout honoured only after {elapsed:?}"
    );
}

/// Fault-injection half: the race spawn/probe/join sites, and the
/// containment claims. Serialised via the same global-registry
/// discipline as `tests/child_join_faults.rs`.
#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use decomp::faults::{self, Fault};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn armed() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let g = GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        faults::reset();
        g
    }

    /// A probe thread that panics is contained: the width goes
    /// undecided, the surviving probes' verdicts still certify a
    /// validated witness, and the sweep returns normally.
    #[test]
    fn panicking_probe_is_contained_and_survivors_win() {
        let _g = armed();
        let hg = families::band_cycle(80, 4, 2); // hw = 2
        faults::arm("logk/race/probe", 1, Fault::Panic);
        let ctrl = Arc::new(Control::unlimited());
        let b = width_bounds_racing(&hg, 3, &ctrl, None, 2, |_| LogK::sequential());
        assert!(faults::hits("logk/race/probe") >= 1, "site never reached");
        // Whichever probe died, the survivors must still have produced
        // a coherent, validated result: the witness stands, the lower
        // bound never claims more than the definitive refutations.
        let u = b.best_upper.expect("a surviving probe must witness");
        assert!(u <= 3);
        assert!(b.proven_lower <= u);
        let w = b.witness.expect("witness accompanies the upper bound");
        assert!(validate_hd_width(&hg, &w, u).is_ok());
        faults::reset();
    }

    /// A spurious cancellation at the spawn site interrupts the sweep
    /// like any external cancellation — degraded bounds, never wrong
    /// ones.
    #[test]
    fn cancel_at_race_spawn_interrupts_the_sweep() {
        let _g = armed();
        let hg = families::grid(4, 4);
        faults::arm("logk/race/spawn", 1, Fault::Cancel);
        let ctrl = Arc::new(Control::unlimited());
        let b = width_bounds_racing(&hg, 4, &ctrl, None, 2, |_| LogK::sequential());
        assert!(faults::hits("logk/race/spawn") >= 1);
        assert_eq!(b.interrupted, Some(Interrupted::Cancelled));
        // No probe ran to a definitive verdict before the cancellation
        // propagated — whatever bounds survive must stay conservative.
        assert!(b.proven_lower <= 4);
        faults::reset();
    }

    /// A panic at the coordinator's join site unwinds out of the sweep
    /// (the coordinator has no containment boundary of its own — that
    /// is the caller's job, exactly like the engine's child-join
    /// sites), and the drop guard cancels every in-flight probe so
    /// nothing leaks; the racing layer stays healthy afterwards.
    #[test]
    fn panic_at_race_join_unwinds_and_leaves_the_layer_healthy() {
        let _g = armed();
        let hg = families::band_cycle(80, 4, 2);
        faults::arm("logk/race/join", 1, Fault::Panic);
        let ctrl = Arc::new(Control::unlimited());
        let result = catch_unwind(AssertUnwindSafe(|| {
            width_bounds_racing(&hg, 3, &ctrl, None, 2, |_| LogK::sequential())
        }));
        let payload = result.expect_err("armed join panic must unwind");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("logk/race/join"),
            "unexpected panic payload: {message}"
        );
        faults::reset();
        // The layer is reusable immediately after the unwind.
        let b = width_bounds_racing(&hg, 3, &ctrl, None, 2, |_| LogK::sequential());
        assert_eq!(b.best_upper, Some(2));
        faults::reset();
    }

    /// A panicking portfolio racer is contained on its thread; the
    /// surviving racers' verdict wins and still validates.
    #[test]
    fn panicking_portfolio_racer_is_contained() {
        let _g = armed();
        let hg = families::grid(4, 4);
        faults::arm("portfolio/engine", 1, Fault::Panic);
        let port = portfolio::Portfolio::full(1);
        let ctrl = Arc::new(Control::unlimited());
        let out = port.race(&hg, 3, &ctrl);
        assert!(faults::hits("portfolio/engine") >= 1, "site never reached");
        match out.verdict {
            Ok(Some(w)) => {
                assert!(validate_hd_width(&hg, &w, 3).is_ok());
                assert!(out.winner.is_some());
            }
            other => panic!("survivors must still witness grid4x4 at 3: {other:?}"),
        }
        faults::reset();
    }

    /// A spurious cancellation at the portfolio join site surfaces as
    /// an interrupted race, not a wrong verdict.
    #[test]
    fn cancel_at_portfolio_join_interrupts_the_race() {
        let _g = armed();
        let hg = families::grid(4, 4);
        faults::arm("portfolio/join", 1, Fault::Cancel);
        let port = portfolio::Portfolio::full(1);
        let ctrl = Arc::new(Control::unlimited());
        let out = port.race(&hg, 3, &ctrl);
        assert!(faults::hits("portfolio/join") >= 1);
        // The first join hit fires before any verdict is accepted, so
        // the cancellation wins the race — and must be typed as such.
        assert!(
            matches!(out.verdict, Err(Interrupted::Cancelled)) || out.winner.is_some(),
            "cancelled race produced an untyped result"
        );
        faults::reset();
    }
}
