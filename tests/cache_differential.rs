//! Differential tests for the negative-subproblem memoisation layer: the
//! caching engine must be *observationally identical* to the uncached
//! engine — same decidability for every k, and every witness passes the
//! full HD validator — in both the sequential and the parallel
//! (`parallel_depth > 0`) configurations. The cache may only change how
//! fast the answer arrives, never the answer.

use decomp::{validate_hd_width, Control};
use logk::LogK;
use proptest::prelude::*;
use workloads::{hyperbench_like, CorpusConfig};

/// Cached and uncached engines across the workloads corpus, sequential
/// and parallel. Also asserts the acceptance criterion that the cache is
/// actually exercised: cyclic corpus instances must produce hits.
#[test]
fn corpus_cached_matches_uncached_sequential_and_parallel() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let k_max = 4usize;

    let configs: [(&str, LogK, LogK); 2] = [
        (
            "sequential",
            LogK::sequential(),
            LogK::sequential().with_cache_bytes(0),
        ),
        (
            "parallel",
            LogK::parallel(2),
            LogK::parallel(2).with_cache_bytes(0),
        ),
    ];

    for (mode, cached, uncached) in configs {
        let mut cyclic_hits = 0u64;
        let mut checked = 0usize;
        for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 40) {
            for k in 1..=k_max {
                let (dc, sc) = cached.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                let (du, su) = uncached.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                assert_eq!(
                    dc.is_some(),
                    du.is_some(),
                    "{mode}: cached and uncached disagree on {} at k={k}",
                    inst.name
                );
                assert_eq!(
                    su.cache.hits + su.cache.misses + su.cache.inserts,
                    0,
                    "{mode}: uncached engine must not touch the cache"
                );
                if !hypergraph::is_acyclic(&inst.hg) {
                    cyclic_hits += sc.cache.hits;
                }
                if let Some(d) = &dc {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid cached witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if let Some(d) = &du {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid uncached witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if dc.is_some() {
                    break; // width found; larger k adds nothing new
                }
            }
            checked += 1;
        }
        assert!(checked > 10, "{mode}: corpus slice unexpectedly small");
        assert!(
            cyclic_hits > 0,
            "{mode}: expected cache hits on cyclic corpus instances"
        );
    }
}

/// The memoisation showcase workload — two K5 cliques sharing two
/// vertices, searched at the failing width k = 2 — must agree with the
/// uncached engine, and the cache must actually fire (this is the
/// instance `micro.rs` benchmarks for the wall-clock win).
#[test]
fn twin_k5_negative_search_agrees_and_hits() {
    let mut edges = Vec::new();
    for a in 0..5u32 {
        for b in a + 1..5 {
            edges.push(vec![a, b]);
        }
    }
    for a in 3..8u32 {
        for b in a + 1..8 {
            edges.push(vec![a, b]);
        }
    }
    let hg = hypergraph::Hypergraph::from_edge_lists(&edges);
    assert!(!hypergraph::is_acyclic(&hg));
    let ctrl = Control::unlimited();

    let (d, stats) = LogK::sequential()
        .decompose_with_stats(&hg, 2, &ctrl)
        .unwrap();
    assert!(d.is_none(), "two glued K5s have hw = 3 > 2");
    assert!(
        stats.cache.hits > 0,
        "negative search must reuse refuted subproblems"
    );
    let uncached = LogK::sequential()
        .with_cache_bytes(0)
        .decide(&hg, 2, &ctrl)
        .unwrap();
    assert!(!uncached);

    // Both engines find and certify the true width 3.
    for solver in [LogK::sequential(), LogK::sequential().with_cache_bytes(0)] {
        let d = solver.decompose(&hg, 3, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 3).unwrap();
    }
}

/// A tiny cache budget must degrade capacity, never correctness: with a
/// budget that fits only a handful of entries the engine still agrees
/// with the uncached engine everywhere.
#[test]
fn tiny_cache_budget_is_still_sound() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 150.0,
    });
    let ctrl = Control::unlimited();
    let tiny = LogK::sequential().with_cache_bytes(4096);
    let off = LogK::sequential().with_cache_bytes(0);
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 25) {
        for k in 1..=3 {
            let a = tiny.decide(&inst.hg, k, &ctrl).unwrap();
            let b = off.decide(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(a, b, "{} at k={k}", inst.name);
        }
    }
}

fn arb_hypergraph() -> impl Strategy<Value = hypergraph::Hypergraph> {
    prop::collection::vec(prop::collection::vec(0u32..9, 2..4), 1..9)
        .prop_map(|edges| hypergraph::Hypergraph::from_edge_lists(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary small hypergraphs: cached (sequential and parallel) and
    /// uncached decisions coincide for every k, witnesses validate.
    #[test]
    fn cached_decisions_match_uncached(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let cached_seq = LogK::sequential();
        let cached_par = LogK::parallel(2);
        let uncached = LogK::sequential().with_cache_bytes(0);
        for k in 1..=3usize {
            let a = cached_seq.decompose(&hg, k, &ctrl).unwrap();
            let p = cached_par.decompose(&hg, k, &ctrl).unwrap();
            let b = uncached.decide(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a.is_some(), b, "sequential vs uncached at k={}", k);
            prop_assert_eq!(p.is_some(), b, "parallel vs uncached at k={}", k);
            if let Some(d) = a {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
            if let Some(d) = p {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
        }
    }
}
