//! Differential tests for the unified subproblem-memoisation layer: the
//! caching engine must be *observationally identical* to the uncached
//! engine — same decidability for every k, and every witness passes the
//! full HD validator — in both the sequential and the parallel
//! (`parallel_depth > 0`) configurations. The cache may only change how
//! fast the answer arrives, never the answer. Since PR 2 the cache stores
//! *positive* fragments too (arena-independent, re-interned on reuse) and
//! evicts under memory pressure, so the suite additionally asserts that
//! positive hits actually occur and that eviction degrades capacity, not
//! correctness.

use decomp::{validate_hd_width, Control};
use logk::LogK;
use proptest::prelude::*;
use workloads::{hyperbench_like, wide_corpus, CorpusConfig, WideConfig};

/// Cached and uncached engines across the workloads corpus, sequential
/// and parallel. Also asserts the acceptance criteria that the cache is
/// actually exercised: cyclic corpus instances must produce hits, and the
/// corpus as a whole must produce *positive* (fragment-reuse) hits.
#[test]
fn corpus_cached_matches_uncached_sequential_and_parallel() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let k_max = 4usize;

    let configs: [(&str, LogK, LogK); 2] = [
        (
            "sequential",
            LogK::sequential(),
            LogK::sequential().with_cache_bytes(0),
        ),
        (
            "parallel",
            LogK::parallel(2),
            LogK::parallel(2).with_cache_bytes(0),
        ),
    ];

    for (mode, cached, uncached) in configs {
        let mut cyclic_hits = 0u64;
        let mut pos_hits = 0u64;
        let mut checked = 0usize;
        for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 40) {
            for k in 1..=k_max {
                let (dc, sc) = cached.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                let (du, su) = uncached.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                assert_eq!(
                    dc.is_some(),
                    du.is_some(),
                    "{mode}: cached and uncached disagree on {} at k={k}",
                    inst.name
                );
                assert_eq!(
                    su.cache.hits() + su.cache.misses + su.cache.inserts,
                    0,
                    "{mode}: uncached engine must not touch the cache"
                );
                if !hypergraph::is_acyclic(&inst.hg) {
                    cyclic_hits += sc.cache.hits();
                }
                pos_hits += sc.cache.pos_hits;
                // Every stitched decomposition goes through decomp's full
                // validator — including those assembled from re-interned
                // positive-cache fragments.
                if let Some(d) = &dc {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid cached witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if let Some(d) = &du {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid uncached witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if dc.is_some() {
                    break; // width found; larger k adds nothing new
                }
            }
            checked += 1;
        }
        assert!(checked > 10, "{mode}: corpus slice unexpectedly small");
        assert!(
            cyclic_hits > 0,
            "{mode}: expected cache hits on cyclic corpus instances"
        );
        assert!(
            pos_hits > 0,
            "{mode}: expected positive-fragment reuse across the corpus"
        );
    }
}

/// The positive-memoisation showcase — the 5×6 grid at its true width
/// k = 3 re-derives the same solvable subproblems hundreds of times
/// (`micro/pos_cache` benchmarks the ~40× wall-clock win). The cached
/// engine must reuse fragments, rewrite special-leaf ids while doing so,
/// and still produce a fully valid decomposition.
#[test]
fn grid5x6_positive_search_reuses_fragments() {
    let hg = workloads::families::grid(5, 6);
    let ctrl = Control::unlimited();
    let (d, stats) = LogK::sequential()
        .decompose_with_stats(&hg, 3, &ctrl)
        .unwrap();
    let d = d.expect("the 5×6 grid has hw = 3");
    validate_hd_width(&hg, &d, 3).unwrap();
    assert!(
        stats.cache.pos_hits > 0,
        "grid search must reuse successful fragments"
    );
    assert!(
        stats.cache.id_rewrites > 0,
        "fragment reuse under specials must rewrite leaf ids"
    );
    assert!(
        stats.cache.neg_hits > 0,
        "grid search must also reuse refutations"
    );
}

/// The negative-memoisation showcase workload — two K5 cliques sharing
/// two vertices, searched at the failing width k = 2 — must agree with
/// the uncached engine, and the cache must actually fire (this is the
/// instance `micro.rs` benchmarks for the wall-clock win).
#[test]
fn twin_k5_negative_search_agrees_and_hits() {
    let mut edges = Vec::new();
    for a in 0..5u32 {
        for b in a + 1..5 {
            edges.push(vec![a, b]);
        }
    }
    for a in 3..8u32 {
        for b in a + 1..8 {
            edges.push(vec![a, b]);
        }
    }
    let hg = hypergraph::Hypergraph::from_edge_lists(&edges);
    assert!(!hypergraph::is_acyclic(&hg));
    let ctrl = Control::unlimited();

    let (d, stats) = LogK::sequential()
        .decompose_with_stats(&hg, 2, &ctrl)
        .unwrap();
    assert!(d.is_none(), "two glued K5s have hw = 3 > 2");
    assert!(
        stats.cache.neg_hits > 0,
        "negative search must reuse refuted subproblems"
    );
    let uncached = LogK::sequential()
        .with_cache_bytes(0)
        .decide(&hg, 2, &ctrl)
        .unwrap();
    assert!(!uncached);

    // Both engines find and certify the true width 3.
    for solver in [LogK::sequential(), LogK::sequential().with_cache_bytes(0)] {
        let d = solver.decompose(&hg, 3, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 3).unwrap();
    }
}

/// A tiny cache budget must degrade capacity, never correctness: with a
/// budget that fits only a handful of entries the second-chance sweep
/// churns constantly, and the engine still agrees with the uncached
/// engine everywhere.
#[test]
fn tiny_cache_budget_evicts_but_stays_sound() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 150.0,
    });
    let ctrl = Control::unlimited();
    let tiny = LogK::sequential().with_cache_bytes(4096);
    let off = LogK::sequential().with_cache_bytes(0);
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 25) {
        for k in 1..=3 {
            let (da, sa) = tiny.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let b = off.decide(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(da.is_some(), b, "{} at k={k}", inst.name);
            assert!(
                sa.cache.bytes <= 4096,
                "{} at k={k}: cache exceeded its byte budget",
                inst.name
            );
            if let Some(d) = &da {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
        }
    }

    // The 40-cycle at k = 2 floods the cache with ~1 KiB entries, so a
    // 4 KiB budget forces the second-chance sweep to actually evict —
    // while the answer and its witness stay correct. Positive inserts
    // are deliberately ungated here: with the default
    // `pos_cache_max_frag` gate most of this workload's (large,
    // positive) fragments are never stored, which leaves eviction
    // pressure marginal and hash-seed-dependent — the assertion below
    // needs the full PR 2 insert stream to be deterministic.
    let hg = workloads::families::cycle(40);
    let tiny = tiny.with_pos_cache_max_frag(usize::MAX);
    let (d, stats) = tiny.decompose_with_stats(&hg, 2, &ctrl).unwrap();
    validate_hd_width(&hg, &d.expect("cycles have hw = 2"), 2).unwrap();
    assert!(
        stats.cache.evictions > 0,
        "a 4 KiB budget must force the second-chance sweep to evict"
    );
    assert!(stats.cache.bytes <= 4096);
    assert!(
        off.decide(&hg, 2, &ctrl).unwrap(),
        "uncached engine agrees on the evicting instance"
    );
}

/// The det-k memo's entry-cap retention, driven through the shared
/// striped-table core by real hybrid solves: a cap small enough to freeze
/// almost immediately must degrade reuse, never correctness, and the cap
/// must hold exactly (the core's admission runs under the shard lock).
#[test]
fn detk_entry_cap_policy_sound() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let capped = LogK::hybrid(1).with_detk_cache_cap(4);
    let roomy = LogK::hybrid(1);
    let oracle = LogK::sequential().with_cache_bytes(0);
    let mut handoffs = 0u64;
    let mut capped_inserts = 0u64;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 30) {
        for k in 1..=3usize {
            let (dc, sc) = capped.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let (dr, _) = roomy.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let b = oracle.decide(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                dc.is_some(),
                b,
                "capped hybrid vs oracle: {} k={k}",
                inst.name
            );
            assert_eq!(
                dr.is_some(),
                b,
                "roomy hybrid vs oracle: {} k={k}",
                inst.name
            );
            assert!(
                sc.detk_memo.entries <= 4,
                "{} k={k}: entry cap exceeded ({} entries)",
                inst.name,
                sc.detk_memo.entries
            );
            handoffs += sc.detk_handoffs;
            capped_inserts += sc.detk_memo.inserts;
            if let Some(d) = &dc {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if dc.is_some() {
                break;
            }
        }
    }
    assert!(handoffs > 0, "the hybrid corpus run must hand off to det-k");
    assert!(
        capped_inserts > 0,
        "the capped memo must still admit its first entries"
    );
}

/// Cross-policy soundness: both retention policies of the shared core
/// active at once — the engine cache churning under a 4 KiB CLOCK budget
/// *and* the det-k memo frozen at a tiny entry cap — against both
/// disabled. Same decisions, validated witnesses, budgets respected.
#[test]
fn cross_policy_tiny_limits_stay_sound() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 7,
        scale: 1.0 / 150.0,
    });
    let ctrl = Control::unlimited();
    let tiny = LogK::hybrid(1)
        .with_cache_bytes(4096)
        .with_detk_cache_cap(2)
        .with_pos_cache_max_frag(usize::MAX);
    let off = LogK::hybrid(1).with_cache_bytes(0).with_detk_cache_cap(0);
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 25) {
        for k in 1..=3usize {
            let (da, sa) = tiny.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let (db, sb) = off.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                da.is_some(),
                db.is_some(),
                "both-policies-tiny vs both-off disagree on {} at k={k}",
                inst.name
            );
            assert!(sa.cache.bytes <= 4096, "CLOCK budget exceeded");
            assert!(sa.detk_memo.entries <= 2, "entry cap exceeded");
            assert_eq!(
                sb.detk_memo.inserts, 0,
                "a zero cap must freeze the memo entirely"
            );
            if let Some(d) = &da {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if da.is_some() {
                break;
            }
        }
    }
}

/// Wide corpus: cached and uncached engines agree at the certified
/// widths on instances whose bitsets span many 64-bit words, where the
/// cache keys hash multi-word masks and positive fragments carry wide
/// bags. The answers must not depend on the lane-chunked substrate.
#[test]
fn wide_corpus_cached_matches_uncached() {
    let ctrl = Control::unlimited();
    let cached = LogK::sequential();
    let uncached = LogK::sequential().with_cache_bytes(0);
    let mut checked = 0usize;
    for inst in wide_corpus(WideConfig::default()) {
        let Some(k) = inst.width_upper else { continue };
        let (dc, _) = cached.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
        let b = uncached.decide(&inst.hg, k, &ctrl).unwrap();
        assert_eq!(
            dc.is_some(),
            b,
            "cached and uncached disagree on {} at k={k}",
            inst.name
        );
        if let Some(d) = &dc {
            validate_hd_width(&inst.hg, d, k)
                .unwrap_or_else(|e| panic!("invalid witness on {}: {e:?}", inst.name));
        }
        checked += 1;
    }
    assert!(checked >= 5, "wide corpus slice unexpectedly small");
}

fn arb_hypergraph() -> impl Strategy<Value = hypergraph::Hypergraph> {
    prop::collection::vec(prop::collection::vec(0u32..9, 2..4), 1..9)
        .prop_map(|edges| hypergraph::Hypergraph::from_edge_lists(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary small hypergraphs: cached (sequential and parallel) and
    /// uncached decisions coincide for every k, witnesses validate.
    #[test]
    fn cached_decisions_match_uncached(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let cached_seq = LogK::sequential();
        let cached_par = LogK::parallel(2);
        let uncached = LogK::sequential().with_cache_bytes(0);
        for k in 1..=3usize {
            let a = cached_seq.decompose(&hg, k, &ctrl).unwrap();
            let p = cached_par.decompose(&hg, k, &ctrl).unwrap();
            let b = uncached.decide(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a.is_some(), b, "sequential vs uncached at k={}", k);
            prop_assert_eq!(p.is_some(), b, "parallel vs uncached at k={}", k);
            if let Some(d) = a {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
            if let Some(d) = p {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
        }
    }

    /// Eviction fuzzing: a minuscule budget (heavy sweep churn) must not
    /// change any decision on arbitrary hypergraphs.
    #[test]
    fn tiny_budget_decisions_match_uncached(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let tiny = LogK::sequential().with_cache_bytes(2048);
        let off = LogK::sequential().with_cache_bytes(0);
        for k in 1..=3usize {
            let a = tiny.decide(&hg, k, &ctrl).unwrap();
            let b = off.decide(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a, b, "tiny-budget vs uncached at k={}", k);
        }
    }

    /// Both retention policies of the shared striped core fuzzed at once:
    /// a 4 KiB CLOCK budget (ungated positive inserts, maximum eviction
    /// churn) on the engine cache plus a 2-entry cap on the det-k memo,
    /// against both disabled. Decisions must coincide and both limits
    /// must hold on every arbitrary hypergraph.
    #[test]
    fn tiny_budget_and_cap_decisions_match(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let tiny = LogK::hybrid(1)
            .with_cache_bytes(4096)
            .with_detk_cache_cap(2)
            .with_pos_cache_max_frag(usize::MAX);
        let off = LogK::hybrid(1).with_cache_bytes(0).with_detk_cache_cap(0);
        for k in 1..=3usize {
            let (da, sa) = tiny.decompose_with_stats(&hg, k, &ctrl).unwrap();
            let b = off.decide(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(da.is_some(), b, "both-tiny vs both-off at k={}", k);
            prop_assert!(sa.cache.bytes <= 4096, "CLOCK budget exceeded at k={}", k);
            prop_assert!(sa.detk_memo.entries <= 2, "entry cap exceeded at k={}", k);
        }
    }
}
