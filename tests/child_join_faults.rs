//! Fault injection at the sibling fan-out's new join points
//! (`logk/engine/child_split`, `logk/engine/child_branch`,
//! `logk/engine/child_join`): deterministic panics, stalls and spurious
//! cancellations at each site must surface exactly like any other
//! engine interruption — `Timeout`/`Cancelled` verdicts within the
//! cooperative-stop latency, panics unwinding with the site's message —
//! and at 1 worker the sites must never even be reached, because the
//! split gate keeps the child loops on the sequential fast path.
#![cfg(feature = "fault-injection")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use decomp::faults::{self, Fault};
use decomp::{Control, Interrupted};
use hypergraph::Hypergraph;
use logk::LogK;
use workloads::families;

/// The fault registry is process-global: serialise the tests and leave
/// the registry clean on both entry and exit (even after a failure).
fn armed() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    faults::reset();
    g
}

/// A multi-component instance whose root candidates all fan their
/// sibling components out (empty root connector), guaranteeing every
/// child site is hit early at 2 workers with the default grain.
fn multi_component() -> Hypergraph {
    families::disjoint_union(&[families::grid(4, 4), families::grid(4, 4)])
}

/// A panic injected into a sibling branch job unwinds out of the pool
/// scope with the site's message (the containment boundary is the
/// caller's — here there is none, so the solve itself unwinds).
#[test]
fn panic_at_child_branch_unwinds_with_site_message() {
    let _g = armed();
    let hg = multi_component();
    faults::arm("logk/engine/child_branch", 1, Fault::Panic);
    let ctrl = Control::unlimited();
    let result = catch_unwind(AssertUnwindSafe(|| LogK::parallel(2).decide(&hg, 3, &ctrl)));
    let payload = result.expect_err("armed branch panic must unwind");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("logk/engine/child_branch"),
        "unexpected panic payload: {message}"
    );
    faults::reset();
    // The engine (and its pool) stay healthy for the next solve.
    assert!(LogK::parallel(2).decide(&hg, 3, &ctrl).unwrap());
}

/// A spurious cancellation fired at a child join point surfaces as a
/// `Cancelled` verdict, not a wrong answer.
#[test]
fn cancel_at_child_join_interrupts_the_solve() {
    let _g = armed();
    let hg = multi_component();
    faults::arm("logk/engine/child_join", 1, Fault::Cancel);
    let ctrl = Control::unlimited();
    let got = LogK::parallel(2).decide(&hg, 3, &ctrl);
    assert_eq!(got, Err(Interrupted::Cancelled));
    assert!(faults::hits("logk/engine/child_join") >= 1);
    faults::reset();
}

/// A stall injected at the split point pushes the solve past its
/// deadline: the next checkpoint reports `Timeout`.
#[test]
fn delay_at_child_split_hits_the_deadline() {
    let _g = armed();
    let hg = multi_component();
    faults::arm(
        "logk/engine/child_split",
        1,
        Fault::Delay(Duration::from_millis(300)),
    );
    let ctrl = Control::with_timeout(Duration::from_millis(25));
    let got = LogK::parallel(2).decide(&hg, 3, &ctrl);
    assert_eq!(got, Err(Interrupted::Timeout));
    faults::reset();
}

/// At 1 worker the split gate keeps every child loop sequential: faults
/// armed on all three child sites never fire, and the solve completes.
#[test]
fn child_sites_are_never_reached_at_one_worker() {
    let _g = armed();
    let hg = multi_component();
    faults::arm("logk/engine/child_split", 1, Fault::Panic);
    faults::arm("logk/engine/child_branch", 1, Fault::Panic);
    faults::arm("logk/engine/child_join", 1, Fault::Panic);
    let ctrl = Control::unlimited();
    assert!(LogK::parallel(1).decide(&hg, 3, &ctrl).unwrap());
    for site in [
        "logk/engine/child_split",
        "logk/engine/child_branch",
        "logk/engine/child_join",
    ] {
        assert_eq!(faults::hits(site), 0, "{site} hit on a 1-worker pool");
    }
    faults::reset();
}
