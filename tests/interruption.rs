//! Interruption differential suite: **every** solver in the workspace
//! must honour cooperative interruption — returning `Timeout` when its
//! control's deadline fires and `Cancelled` when an external caller
//! cancels mid-search — within a bounded latency of the interruption,
//! on instances each solver would otherwise chew on for orders of
//! magnitude longer.
//!
//! This is the contract the `htdserve` service builds on: a server can
//! only shed load, enforce deadlines and drain gracefully if no engine
//! anywhere in the stack can wedge past its control. Run it with
//! `RAYON_NUM_THREADS=1` and `=2` (CI does both): degenerate pools have
//! historically been where cooperative-stop bugs hide.

use std::sync::Arc;
use std::time::{Duration, Instant};

use decomp::{Control, Interrupted};
use hypergraph::Hypergraph;
use workloads::families;

/// Wall-clock budget each request gets before its deadline fires.
const BUDGET: Duration = Duration::from_millis(25);

/// How long after the interruption a solver may take to actually
/// return. Checkpoints are hit every few hundred candidate steps, so
/// the true latency is sub-millisecond; the bound absorbs debug builds and
/// loaded CI boxes.
const LATENCY: Duration = Duration::from_secs(3);

/// An instance the `log-k-decomp` family, `det-k-decomp` and the GHD
/// baseline all search for ≫ `LATENCY` at `k = 3` (measured ≥ 0.9 s
/// release, minutes for `det-k`).
fn hard_logk() -> Hypergraph {
    families::chorded_cycle(96, 48, 3)
}

/// Small enough for Algorithm 1's exponential search to start, big
/// enough that it never finishes (measured > 5 s release at `k = 2`).
fn hard_basic() -> Hypergraph {
    families::chorded_cycle(48, 20, 5)
}

/// A hard *multi-component* instance: the root connector is empty, so
/// every root-mode candidate fans its sibling components out on the pool
/// (below-children parallelism) — interruption must propagate through
/// the child-join path, not just the λc race.
fn hard_multi_component() -> Hypergraph {
    families::disjoint_union(&[hard_logk(), families::chorded_cycle(96, 48, 4)])
}

/// Keeps the SAT baseline solving for ~300 ms release at `k = 2`.
fn hard_sat() -> Hypergraph {
    families::grid(7, 7)
}

/// Runs `solve` under a `BUDGET` deadline and asserts it reports
/// `Timeout` within `LATENCY` of the deadline.
fn assert_times_out(name: &str, solve: impl FnOnce(&Control) -> Option<Interrupted>) {
    let ctrl = Control::with_timeout(BUDGET);
    let t0 = Instant::now();
    let got = solve(&ctrl);
    let elapsed = t0.elapsed();
    assert_eq!(
        got,
        Some(Interrupted::Timeout),
        "{name}: expected a timeout verdict (after {elapsed:?})"
    );
    assert!(
        elapsed < BUDGET + LATENCY,
        "{name}: timeout honoured only after {elapsed:?}"
    );
}

/// Runs `solve` under an unlimited control that a second thread cancels
/// after `BUDGET`, and asserts it reports `Cancelled` within `LATENCY`
/// of the cancellation.
fn assert_cancels(name: &str, solve: impl FnOnce(&Control) -> Option<Interrupted>) {
    let ctrl = Arc::new(Control::unlimited());
    let killer = {
        let ctrl = Arc::clone(&ctrl);
        std::thread::spawn(move || {
            std::thread::sleep(BUDGET);
            ctrl.cancel();
        })
    };
    let t0 = Instant::now();
    let got = solve(&ctrl);
    let elapsed = t0.elapsed();
    killer.join().expect("killer thread");
    assert_eq!(
        got,
        Some(Interrupted::Cancelled),
        "{name}: expected a cancellation verdict (after {elapsed:?})"
    );
    assert!(
        elapsed < BUDGET + LATENCY,
        "{name}: cancellation honoured only after {elapsed:?}"
    );
}

// ---- log-k-decomp, sequential ----

#[test]
fn logk_sequential_times_out() {
    let hg = hard_logk();
    assert_times_out("logk/seq", |c| {
        logk::LogK::sequential().decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_sequential_cancels() {
    let hg = hard_logk();
    assert_cancels("logk/seq", |c| {
        logk::LogK::sequential().decide(&hg, 3, c).err()
    });
}

// ---- log-k-decomp, parallel (2 workers, explicit pool) ----

#[test]
fn logk_parallel_times_out() {
    let hg = hard_logk();
    assert_times_out("logk/par2", |c| {
        logk::LogK::parallel(2).decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_parallel_cancels() {
    let hg = hard_logk();
    assert_cancels("logk/par2", |c| {
        logk::LogK::parallel(2).decide(&hg, 3, c).err()
    });
}

// ---- log-k-decomp, sibling-children fan-out (multi-component) ----

#[test]
fn logk_child_parallel_times_out() {
    let hg = hard_multi_component();
    assert_times_out("logk/children2", |c| {
        logk::LogK::parallel(2).decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_child_parallel_cancels() {
    let hg = hard_multi_component();
    assert_cancels("logk/children2", |c| {
        logk::LogK::parallel(2).decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_child_sequential_fallback_times_out() {
    // 1-worker pool: the split gate must keep the child loops on the
    // sequential fast path, and the stop contract must hold regardless.
    let hg = hard_multi_component();
    assert_times_out("logk/children1", |c| {
        logk::LogK::parallel(1).decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_child_sequential_fallback_cancels() {
    let hg = hard_multi_component();
    assert_cancels("logk/children1", |c| {
        logk::LogK::parallel(1).decide(&hg, 3, c).err()
    });
}

// ---- log-k-decomp, hybrid (parallel + det-k handoffs) ----

#[test]
fn logk_hybrid_times_out() {
    let hg = hard_logk();
    assert_times_out("logk/hybrid2", |c| {
        logk::LogK::hybrid(2).decide(&hg, 3, c).err()
    });
}

#[test]
fn logk_hybrid_cancels() {
    let hg = hard_logk();
    assert_cancels("logk/hybrid2", |c| {
        logk::LogK::hybrid(2).decide(&hg, 3, c).err()
    });
}

// ---- Algorithm 1 (reference oracle) ----

#[test]
fn basic_times_out() {
    let hg = hard_basic();
    assert_times_out("logk/basic", |c| {
        logk::LogK::basic().decide(&hg, 2, c).err()
    });
}

#[test]
fn basic_cancels() {
    let hg = hard_basic();
    assert_cancels("logk/basic", |c| {
        logk::LogK::basic().decide(&hg, 2, c).err()
    });
}

// ---- det-k-decomp ----

#[test]
fn detk_times_out() {
    let hg = hard_logk();
    assert_times_out("detk", |c| detk::decide_detk(&hg, 3, c).err());
}

#[test]
fn detk_cancels() {
    let hg = hard_logk();
    assert_cancels("detk", |c| detk::decide_detk(&hg, 3, c).err());
}

// ---- GHD baseline (BalSep-style) ----

#[test]
fn ghd_times_out() {
    let hg = hard_logk();
    assert_times_out("ghd", |c| ghd::decompose_ghd(&hg, 3, c).err());
}

#[test]
fn ghd_cancels() {
    let hg = hard_logk();
    assert_cancels("ghd", |c| ghd::decompose_ghd(&hg, 3, c).err());
}

// ---- SAT baseline (HtdLEO substitute) ----

#[test]
fn htdsat_times_out() {
    let hg = hard_sat();
    assert_times_out("htdsat", |c| match htdsat::decide_ghw(&hg, 2, c) {
        Err(htdsat::HtdSatError::Interrupted(i)) => Some(i),
        _ => None,
    });
}

#[test]
fn htdsat_cancels() {
    let hg = hard_sat();
    assert_cancels("htdsat", |c| match htdsat::decide_ghw(&hg, 2, c) {
        Err(htdsat::HtdSatError::Interrupted(i)) => Some(i),
        _ => None,
    });
}
