//! End-to-end tests for the `lkd` command-line tool.

use std::process::Command;

fn lkd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lkd"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn decompose_reports_optimal_width() {
    let f = write_temp("lkd_cli_c4.hg", "r1(x,y), r2(y,z), r3(z,w), r4(w,x).");
    let out = lkd()
        .args(["decompose", f.to_str().unwrap(), "--threads=1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("width: 2"), "{stdout}");
    assert!(stdout.contains("λ ="), "{stdout}");
}

#[test]
fn width_only_mode_is_terse() {
    let f = write_temp("lkd_cli_path.hg", "a(x,y), b(y,z).");
    let out = lkd()
        .args([
            "decompose",
            f.to_str().unwrap(),
            "--width-only",
            "--threads=1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim(), "width: 1");
}

#[test]
fn fixed_k_refusal_has_nonzero_exit() {
    let f = write_temp("lkd_cli_tri.hg", "a(x,y), b(y,z), c(z,x).");
    let out = lkd()
        .args(["decompose", f.to_str().unwrap(), "--k=1", "--threads=1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no decomposition"));
}

#[test]
fn stats_subcommand() {
    let f = write_temp("lkd_cli_stats.hg", "a(x,y,z), b(z,w).");
    let out = lkd().args(["stats", f.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:      2"));
    assert!(stdout.contains("acyclic:    true"));
}

#[test]
fn pace_input_is_accepted() {
    let f = write_temp("lkd_cli_pace.htd", "p htd 3 2\n1 1 2\n2 2 3\n");
    let out = lkd()
        .args([
            "decompose",
            f.to_str().unwrap(),
            "--pace",
            "--width-only",
            "--threads=1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("width: 1"));
}

#[test]
fn alternative_methods_agree() {
    let f = write_temp("lkd_cli_methods.hg", "r1(x,y), r2(y,z), r3(z,w), r4(w,x).");
    for method in ["hybrid", "logk", "detk", "ghd", "sat"] {
        let out = lkd()
            .args([
                "decompose",
                f.to_str().unwrap(),
                &format!("--method={method}"),
                "--width-only",
                "--threads=1",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "method {method}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("width: 2"),
            "method {method}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn unknown_flags_are_rejected() {
    let out = lkd().args(["decompose", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
