//! Differential tests for the λp admissibility pre-filter: rejecting a
//! parent candidate from coverage bitmasks alone (before its `[λp]`-BFS
//! separation runs) must be *observationally identical* to running the
//! full separation — same decidability for every k, and every witness
//! passes the full HD validator — in both the sequential and the
//! parallel (`parallel_depth > 0`) configurations. The pre-filter may
//! only change how many separations run, never the answer. On the grid
//! family (the workload whose `lambda_p_rejected` counter motivated the
//! filter) the suite additionally asserts that the filter actually fires
//! and that it erases the majority of `separate_into` calls.

use decomp::{validate_hd_width, Control};
use logk::{LogK, LpMode};
use proptest::prelude::*;
use workloads::{families, hyperbench_like, wide_corpus, CorpusConfig, WideConfig};

/// Pre-filtered and unfiltered engines across the workloads corpus,
/// sequential and parallel: identical verdicts, valid witnesses, and the
/// filtered engine never runs *more* separations.
#[test]
fn corpus_prefiltered_matches_unfiltered_sequential_and_parallel() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let k_max = 4usize;

    let configs: [(&str, LogK, LogK); 2] = [
        (
            "sequential",
            LogK::sequential(),
            LogK::sequential().with_lambda_p_prefilter(false),
        ),
        (
            "parallel",
            LogK::parallel(2),
            LogK::parallel(2).with_lambda_p_prefilter(false),
        ),
    ];

    for (mode, filtered, unfiltered) in configs {
        let mut checked = 0usize;
        for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 40) {
            for k in 1..=k_max {
                let (df, sf) = filtered.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                let (du, su) = unfiltered.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
                assert_eq!(
                    df.is_some(),
                    du.is_some(),
                    "{mode}: filtered and unfiltered disagree on {} at k={k}",
                    inst.name
                );
                assert_eq!(
                    su.lambda_p_prefiltered, 0,
                    "{mode}: unfiltered engine must not pre-filter"
                );
                // Sequential search order is identical modulo the skipped
                // separations, so the filtered engine can only run fewer.
                // (Parallel counts are racy — whichever branch wins the
                // "any" race shapes how much the losers explored.)
                if mode == "sequential" {
                    assert!(
                        sf.separations <= su.separations,
                        "pre-filter added separations on {} at k={k} ({} > {})",
                        inst.name,
                        sf.separations,
                        su.separations
                    );
                }
                if let Some(d) = &df {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid filtered witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if let Some(d) = &du {
                    validate_hd_width(&inst.hg, d, k).unwrap_or_else(|e| {
                        panic!(
                            "{mode}: invalid unfiltered witness on {} at k={k}: {e:?}",
                            inst.name
                        )
                    });
                }
                if df.is_some() {
                    break; // width found; larger k adds nothing new
                }
            }
            checked += 1;
        }
        assert!(checked > 10, "{mode}: corpus slice unexpectedly small");
    }
}

/// The motivating workload: grid searches reject millions of λp
/// candidates, and most rejections are decidable from coverage bitmasks
/// alone. The filter must fire (`lambda_p_prefiltered > 0`), cut the
/// `separate_into` call count ≥ 5× (the acceptance bar; measured ~10× on
/// 4×4 and ~22–36× on the larger grids), and leave the verdict and its
/// witness untouched — sequential and parallel.
#[test]
fn grid_prefilter_fires_and_erases_most_separations() {
    let ctrl = Control::unlimited();
    for (name, hg) in [
        ("grid4x4", families::grid(4, 4)),
        ("grid4x5", families::grid(4, 5)),
    ] {
        for (mode, filtered, unfiltered) in [
            (
                "sequential",
                LogK::sequential(),
                LogK::sequential().with_lambda_p_prefilter(false),
            ),
            (
                "parallel",
                LogK::parallel(2),
                LogK::parallel(2).with_lambda_p_prefilter(false),
            ),
        ] {
            let (df, sf) = filtered.decompose_with_stats(&hg, 3, &ctrl).unwrap();
            let (du, su) = unfiltered.decompose_with_stats(&hg, 3, &ctrl).unwrap();
            let d = df.unwrap_or_else(|| panic!("{mode}: {name} has hw = 3"));
            validate_hd_width(&hg, &d, 3).unwrap();
            validate_hd_width(&hg, &du.expect("unfiltered agrees"), 3).unwrap();
            assert!(
                sf.lambda_p_prefiltered > 0,
                "{mode}: pre-filter must fire on {name}"
            );
            // The ≥5× acceptance bar is deterministic only sequentially;
            // parallel counts depend on which branch wins the "any" race.
            if mode == "sequential" {
                assert!(
                    su.separations >= 5 * sf.separations,
                    "expected ≥5× fewer separations on {name}, got {} vs {}",
                    sf.separations,
                    su.separations
                );
            }
        }
    }
}

/// The incremental filtering mode (touch masks maintained across the λp
/// subset walk) must be *counter-identical* to the default per-pair mode
/// sequentially — same verdicts, same witnesses, and the exact same
/// number of separations and pre-filter rejections, since both modes
/// compute the same `bad`/`touch_bad` sets in a different way.
#[test]
fn incremental_mode_is_counter_identical_to_per_pair() {
    let corpus = hyperbench_like(CorpusConfig {
        seed: 2024,
        scale: 1.0 / 100.0,
    });
    let ctrl = Control::unlimited();
    let per_pair = LogK::sequential();
    let incremental = LogK::sequential().with_lambda_p_incremental(true);
    // The incremental stacks also live in every parallel branch's pooled
    // scratch bundle; decisions (counters are racy under the "any" race)
    // must agree there too.
    let incremental_par = LogK::parallel(2).with_lambda_p_incremental(true);
    let mut fired = 0u64;
    for inst in corpus.iter().filter(|i| i.hg.num_edges() <= 40) {
        for k in 1..=4usize {
            let (dp, sp) = per_pair.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
            let (di, si) = incremental
                .decompose_with_stats(&inst.hg, k, &ctrl)
                .unwrap();
            let dpar = incremental_par.decompose(&inst.hg, k, &ctrl).unwrap();
            assert_eq!(
                dp.is_some(),
                di.is_some(),
                "modes disagree on {} at k={k}",
                inst.name
            );
            assert_eq!(
                dp.is_some(),
                dpar.is_some(),
                "parallel incremental disagrees on {} at k={k}",
                inst.name
            );
            if let Some(d) = &dpar {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            assert_eq!(
                sp.separations, si.separations,
                "{} at k={k}: incremental mode changed the separation count",
                inst.name
            );
            assert_eq!(
                sp.lambda_p_prefiltered, si.lambda_p_prefiltered,
                "{} at k={k}: incremental mode changed the pre-filter cut",
                inst.name
            );
            fired += si.lambda_p_prefiltered;
            if let Some(d) = &di {
                validate_hd_width(&inst.hg, d, k).unwrap();
            }
            if dp.is_some() {
                break;
            }
        }
    }
    assert!(fired > 0, "the incremental filter must actually fire");
}

/// Wide corpus (hundreds of vertices, multi-word bitsets): all three λp
/// modes — per-pair, incremental, and `Auto` (which resolves to the
/// incremental walk above the word threshold) — agree with the
/// unfiltered engine at the known width, stay counter-identical
/// sequentially, and produce valid witnesses. This is the regime the
/// lane-chunked kernels and the SoA spill-touch matrix were built for.
#[test]
fn wide_corpus_lp_modes_agree_at_known_width() {
    let ctrl = Control::unlimited();
    let per_pair = LogK::sequential().with_lambda_p_mode(LpMode::Never);
    let incremental = LogK::sequential().with_lambda_p_mode(LpMode::Always);
    let auto = LogK::sequential(); // LpMode::Auto by default
    let unfiltered = LogK::sequential().with_lambda_p_prefilter(false);
    let mut checked = 0usize;
    for inst in wide_corpus(WideConfig::default()) {
        let Some(k) = inst.width_upper else { continue };
        let (dp, sp) = per_pair.decompose_with_stats(&inst.hg, k, &ctrl).unwrap();
        let (di, si) = incremental
            .decompose_with_stats(&inst.hg, k, &ctrl)
            .unwrap();
        let da = auto.decompose(&inst.hg, k, &ctrl).unwrap();
        let b = unfiltered.decide(&inst.hg, k, &ctrl).unwrap();
        assert!(
            dp.is_some() && b,
            "{} must decompose at its certified width {k}",
            inst.name
        );
        assert_eq!(dp.is_some(), di.is_some(), "{}", inst.name);
        assert_eq!(dp.is_some(), da.is_some(), "{}", inst.name);
        assert_eq!(
            sp.separations, si.separations,
            "{}: incremental mode changed the separation count",
            inst.name
        );
        assert_eq!(
            sp.lambda_p_prefiltered, si.lambda_p_prefiltered,
            "{}: incremental mode changed the pre-filter cut",
            inst.name
        );
        for d in [&dp, &di, &da].into_iter().flatten() {
            validate_hd_width(&inst.hg, d, k)
                .unwrap_or_else(|e| panic!("invalid witness on {}: {e:?}", inst.name));
        }
        checked += 1;
    }
    assert!(checked >= 5, "wide corpus slice unexpectedly small");
}

/// Reporter behind the BENCHMARKS.md λp phase-3 verdict: wall-clock per
/// λp mode on every fast wide instance. Run with
/// `cargo test --release --test lp_prefilter_differential -- --ignored --nocapture`.
#[test]
#[ignore = "reporter for BENCHMARKS.md, not an assertion"]
fn report_lp_mode_timings_on_wide_corpus() {
    let ctrl = Control::unlimited();
    let modes = [("per_pair", LpMode::Never), ("incremental", LpMode::Always)];
    println!(
        "{:<22} {:>2} {:>6} | {:<12} {:>10}",
        "instance", "k", "words", "mode", "median"
    );
    for inst in wide_corpus(WideConfig::default()) {
        let Some(k) = inst.width_upper else { continue };
        let words = inst.hg.num_vertices().div_ceil(64);
        for (label, mode) in modes {
            let solver = LogK::sequential().with_lambda_p_mode(mode);
            solver.decide(&inst.hg, k, &ctrl).unwrap(); // warm-up
            let mut times: Vec<std::time::Duration> = (0..5)
                .map(|_| {
                    let t = std::time::Instant::now();
                    std::hint::black_box(solver.decide(&inst.hg, k, &ctrl).unwrap());
                    t.elapsed()
                })
                .collect();
            times.sort();
            println!(
                "{:<22} {:>2} {:>6} | {:<12} {:>10.2?}",
                inst.name, k, words, label, times[2]
            );
        }
    }
}

fn arb_hypergraph() -> impl Strategy<Value = hypergraph::Hypergraph> {
    prop::collection::vec(prop::collection::vec(0u32..9, 2..4), 1..9)
        .prop_map(|edges| hypergraph::Hypergraph::from_edge_lists(&edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary small hypergraphs: pre-filtered (sequential and
    /// parallel, per-pair and incremental) and unfiltered decisions
    /// coincide for every k, witnesses validate, and the two filtering
    /// modes run counter-identically.
    #[test]
    fn prefiltered_decisions_match_unfiltered(hg in arb_hypergraph()) {
        let ctrl = Control::unlimited();
        let filtered_seq = LogK::sequential();
        let filtered_par = LogK::parallel(2);
        let filtered_inc = LogK::sequential().with_lambda_p_incremental(true);
        let filtered_inc_par = LogK::parallel(2).with_lambda_p_incremental(true);
        let unfiltered = LogK::sequential().with_lambda_p_prefilter(false);
        for k in 1..=3usize {
            let (a, sa) = filtered_seq.decompose_with_stats(&hg, k, &ctrl).unwrap();
            let p = filtered_par.decompose(&hg, k, &ctrl).unwrap();
            let (i, si) = filtered_inc.decompose_with_stats(&hg, k, &ctrl).unwrap();
            let ip = filtered_inc_par.decide(&hg, k, &ctrl).unwrap();
            let b = unfiltered.decide(&hg, k, &ctrl).unwrap();
            prop_assert_eq!(a.is_some(), b, "sequential vs unfiltered at k={}", k);
            prop_assert_eq!(p.is_some(), b, "parallel vs unfiltered at k={}", k);
            prop_assert_eq!(i.is_some(), b, "incremental vs unfiltered at k={}", k);
            prop_assert_eq!(ip, b, "parallel incremental vs unfiltered at k={}", k);
            prop_assert_eq!(
                sa.separations, si.separations,
                "incremental mode changed separations at k={}", k
            );
            prop_assert_eq!(
                sa.lambda_p_prefiltered, si.lambda_p_prefiltered,
                "incremental mode changed the pre-filter cut at k={}", k
            );
            if let Some(d) = a {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
            if let Some(d) = p {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
            if let Some(d) = i {
                prop_assert!(validate_hd_width(&hg, &d, k).is_ok());
            }
        }
    }
}
