//! `join` — the structured fork-join primitive everything else builds on.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use crate::job::{JobResult, StackJob};
use crate::latch::SpinLatch;
use crate::registry::{self, Registry};

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. Mirrors `rayon::join`:
///
/// * `oper_b` is published on the calling worker's deque where any idle
///   worker can steal it; `oper_a` runs immediately. If nobody stole
///   `oper_b` by the time `oper_a` finishes, it is popped back and run
///   inline — the sequential fast path costs one deque push/pop.
/// * Called from outside a pool, the whole join migrates into the current
///   registry (installed pool, else the global one) first.
/// * Panics propagate: if either closure panics, the panic is re-thrown
///   here once the sibling has been joined (or reclaimed unexecuted), so
///   the stack frames both closures may borrow from stay valid. When both
///   panic, `oper_a`'s payload wins, as in real rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((registry, index)) = registry::current_worker() {
        // A worker runs the join in place — unless a *different* pool was
        // installed over it, in which case the work belongs there.
        let compatible = match registry::installed_registry() {
            Some(installed) => Arc::ptr_eq(&installed, &registry),
            None => true,
        };
        if compatible {
            return join_on_worker(&registry, index, oper_a, oper_b);
        }
    }
    let registry = Registry::current();
    registry.in_worker(move || {
        let (registry, index) = registry::current_worker().expect("in_worker must run on a worker");
        join_on_worker(&registry, index, oper_a, oper_b)
    })
}

fn join_on_worker<A, B, RA, RB>(
    registry: &Arc<Registry>,
    index: usize,
    oper_a: A,
    oper_b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(SpinLatch::new(), oper_b);
    // Safety: job_b lives on this frame, and this function does not
    // return before the job has executed or been abandoned.
    let bref = unsafe { job_b.as_job_ref() };
    unsafe {
        registry.push_local(index, bref);
    }

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Join b: pop it back if still ours, else help out (execute other
    // jobs — our own or stolen ones) until the thief sets the latch.
    while !job_b.latch().probe() {
        // Safety: still on worker `index`'s thread.
        if let Some(job) = unsafe { registry.pop_local(index) } {
            if job.id() == bref.id() {
                if result_a.is_ok() {
                    unsafe { job.execute() };
                } else {
                    // `oper_a` panicked: reclaim b unexecuted and let the
                    // panic propagate below.
                    unsafe { job_b.abandon() };
                }
                break;
            }
            unsafe { job.execute() };
        } else if let Some(job) = registry.steal_for(index) {
            unsafe { job.execute() };
        } else if let Some(job) = registry.pop_injected() {
            unsafe { job.execute() };
        } else {
            SpinLatch::park_brief();
        }
    }

    let ra = match result_a {
        Ok(ra) => ra,
        // b has completed or was reclaimed — its borrows are dead.
        Err(payload) => panic::resume_unwind(payload),
    };
    // Safety: the job executed (latch/pop-back above); no other thread
    // touches it any more.
    match unsafe { job_b.take_result() } {
        JobResult::Ok(rb) => (ra, rb),
        JobResult::Panic(payload) => panic::resume_unwind(payload),
        JobResult::None => unreachable!("join: b neither executed nor abandoned"),
    }
}
