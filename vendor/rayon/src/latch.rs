//! Latches — one-shot completion flags that jobs use to signal the thread
//! waiting on them.
//!
//! The safety contract shared by every implementation: the waiter may free
//! the latch the instant it observes the set state, so [`Latch::set`] must
//! never touch `self` after the store/unlock that makes the waiter's
//! `probe`/`wait` succeed (any handle it needs afterwards — a `Thread` to
//! unpark — is cloned *before* that point).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// The interface a job needs to signal completion.
pub(crate) trait Latch {
    /// Marks the latch as set, waking the waiter. See the module docs for
    /// the use-after-set safety contract.
    fn set(&self);
}

/// Latch for waiters that are themselves pool workers: they poll
/// [`Self::probe`] between stealing other work, parking briefly when the
/// registry runs dry. `set` stores the flag and unparks the owner thread.
pub(crate) struct SpinLatch {
    flag: AtomicBool,
    /// The thread that will wait on this latch (captured at creation —
    /// latches are created by their waiter).
    owner: Thread,
}

impl SpinLatch {
    pub(crate) fn new() -> SpinLatch {
        SpinLatch {
            flag: AtomicBool::new(false),
            owner: std::thread::current(),
        }
    }

    /// Whether the latch has been set. `Acquire` pairs with the `Release`
    /// store in [`Latch::set`], so a true result also publishes the
    /// result slot the job wrote before setting the latch.
    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Brief timed park used by latch wait loops when there is no work to
    /// steal. The timeout bounds the one benign race (an unpark delivered
    /// between the probe and the park) without wiring latches into the
    /// registry sleep protocol.
    pub(crate) fn park_brief() {
        std::thread::park_timeout(Duration::from_micros(100));
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        // Clone the handle first: the owner may free the latch the moment
        // the store below becomes visible.
        let owner = self.owner.clone();
        self.flag.store(true, Ordering::Release);
        owner.unpark();
    }
}

/// Latch for external (non-worker) waiters: a mutex-protected flag, so
/// the waiter blocks on a condvar instead of burning its core. `wait` can
/// only return after `set` has released the lock, which makes freeing the
/// latch on return safe.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> LockLatch {
        LockLatch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Blocks until the latch is set.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cond.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        // Notify while holding the lock: the waiter cannot wake, observe
        // the flag and free the latch before we are done touching it.
        self.cond.notify_all();
    }
}
