//! A Chase–Lev work-stealing deque specialised to [`JobRef`] elements.
//!
//! One thread — the owner — pushes and pops at the *bottom* (LIFO, for
//! locality of nested joins); any number of thieves steal from the *top*
//! (FIFO, so thieves take the oldest, typically largest, piece of work).
//! This is the dynamic-circular-work-stealing-deque of Chase & Lev (SPAA
//! 2005) with the C11 memory orderings of Lê et al. (PPoPP 2013), the
//! same algorithm the real rayon's `crossbeam-deque` implements.
//!
//! Two deliberate simplifications versus crossbeam:
//!
//! * **Retired buffers are kept, not reclaimed.** When the ring buffer
//!   grows, a thief may still be reading the old allocation, so freeing
//!   it needs an epoch/hazard scheme. Instead the old buffer is parked in
//!   a mutex-guarded list and freed when the deque itself drops. Growth
//!   is geometric, so the parked memory is bounded by ~2× the high-water
//!   buffer size — a few kilobytes of `JobRef` pairs in practice.
//! * **Element reads are plain loads validated by the `top` CAS.** A
//!   thief may read a slot concurrently being rewritten by the owner; the
//!   subsequent compare-exchange on `top` fails in exactly those races
//!   and the torn value is discarded. `JobRef` is two plain pointers, so
//!   a torn read is harmless-by-construction to copy around. This is the
//!   standard practice for Chase–Lev outside a formal C11 setting.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

use crate::job::JobRef;

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// Took the top job.
    Success(JobRef),
    /// The deque looked empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
}

struct Buffer {
    /// Capacity, always a power of two.
    cap: isize,
    slots: Box<[UnsafeCell<MaybeUninit<JobRef>>]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer {
            cap: cap as isize,
            slots,
        }))
    }

    #[inline]
    unsafe fn get(&self, index: isize) -> JobRef {
        (*self.slots[(index & (self.cap - 1)) as usize].get()).assume_init_read()
    }

    #[inline]
    unsafe fn put(&self, index: isize, job: JobRef) {
        (*self.slots[(index & (self.cap - 1)) as usize].get()).write(job);
    }
}

/// The work-stealing deque. `push`/`pop` may only be called by the owning
/// worker; `steal` and `is_empty` are safe from any thread.
pub(crate) struct Deque {
    /// Next slot the owner writes. Only the owner mutates it (the
    /// transient decrement in `pop` included).
    bottom: AtomicIsize,
    /// Next slot thieves read. CAS-advanced by thieves and by the owner
    /// when racing for the last element.
    top: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Old ring buffers parked until drop (see module docs).
    retired: Mutex<Vec<*mut Buffer>>,
}

// Safety: the owner-only methods are kept single-threaded by the registry
// (one deque per worker); the shared state is atomics plus the algorithm's
// validated racy reads.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

const INITIAL_CAP: usize = 64;

impl Deque {
    pub(crate) fn new() -> Deque {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(INITIAL_CAP)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: pushes a job at the bottom.
    ///
    /// # Safety
    ///
    /// May only be called by the deque's owning worker thread.
    pub(crate) unsafe fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b - t >= (*buf).cap {
            buf = self.grow(t, b);
        }
        (*buf).put(b, job);
        // Publish the element before publishing the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed job, racing thieves for
    /// the last element.
    ///
    /// # Safety
    ///
    /// May only be called by the deque's owning worker thread.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement before reading top: a concurrent
        // thief must either see the reservation or we must see its CAS.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single element left: race thieves for it via top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then(|| (*buf).get(b))
            } else {
                Some((*buf).get(b))
            }
        } else {
            // Already empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: attempts to steal the oldest job.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the element optimistically; the CAS below validates that
        // no one (owner included) raced us for index `t`.
        let buf = self.buffer.load(Ordering::Acquire);
        let job = unsafe { (*buf).get(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(job)
        } else {
            Steal::Retry
        }
    }

    /// Any thread: whether the deque currently looks empty (advisory —
    /// used by the sleep protocol's work check, not for correctness).
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        t >= b
    }

    /// Owner-only: doubles the ring buffer, copying live indices `t..b`.
    unsafe fn grow(&self, t: isize, b: isize) -> *mut Buffer {
        let old = self.buffer.load(Ordering::Relaxed);
        let new = Buffer::alloc(((*old).cap as usize) * 2);
        for i in t..b {
            (*new).put(i, (*old).get(i));
        }
        // Thieves holding the old pointer keep reading identical values
        // for indices < b; the buffer stays allocated until drop.
        self.buffer.store(new, Ordering::Release);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        new
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for buf in self
                .retired
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                drop(Box::from_raw(buf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A job that records its execution in a shared tally: `execute`
    /// bumps both a global counter and a per-job cell, so the stress test
    /// can assert "every job ran exactly once" — the whole correctness
    /// contract of the deque (no lost jobs, no double-takes under races).
    struct TallyJob {
        executed: AtomicUsize,
        total: Arc<AtomicUsize>,
    }

    impl Job for TallyJob {
        unsafe fn execute(this: *const ()) {
            let this = &*(this as *const TallyJob);
            this.executed.fetch_add(1, Ordering::SeqCst);
            this.total.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn owner_pushes_and_pops_lifo() {
        let deque = Deque::new();
        let total = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<TallyJob> = (0..3)
            .map(|_| TallyJob {
                executed: AtomicUsize::new(0),
                total: Arc::clone(&total),
            })
            .collect();
        unsafe {
            for job in &jobs {
                deque.push(JobRef::new(job as *const TallyJob));
            }
            // LIFO: pops come back in reverse push order.
            for expected in jobs.iter().rev() {
                let popped = deque.pop().expect("pushed job must pop back");
                assert_eq!(popped.id(), expected as *const TallyJob as *const ());
                popped.execute();
            }
            assert!(deque.pop().is_none());
        }
        assert_eq!(total.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn steal_takes_oldest_first() {
        let deque = Deque::new();
        let total = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<TallyJob> = (0..3)
            .map(|_| TallyJob {
                executed: AtomicUsize::new(0),
                total: Arc::clone(&total),
            })
            .collect();
        unsafe {
            for job in &jobs {
                deque.push(JobRef::new(job as *const TallyJob));
            }
        }
        match deque.steal() {
            Steal::Success(job) => {
                assert_eq!(job.id(), &jobs[0] as *const TallyJob as *const ());
            }
            _ => panic!("non-empty deque must be stealable"),
        }
    }

    /// The steal-race stress test: one owner thread pushes jobs and pops
    /// what it can; several thieves steal concurrently; growth is forced
    /// by bursts larger than the initial ring buffer. Afterwards every
    /// job must have executed exactly once — a lost job (steal/pop race
    /// dropping an element) or a double execution (two takers winning the
    /// same slot) both fail the per-job tally.
    #[test]
    fn steal_race_stress_every_job_runs_exactly_once() {
        const ROUNDS: usize = 50;
        const BURST: usize = 200; // > INITIAL_CAP, forcing growth
        const THIEVES: usize = 3;

        let deque = Arc::new(Deque::new());
        let total = Arc::new(AtomicUsize::new(0));
        let jobs: Arc<Vec<TallyJob>> = Arc::new(
            (0..ROUNDS * BURST)
                .map(|_| TallyJob {
                    executed: AtomicUsize::new(0),
                    total: Arc::clone(&total),
                })
                .collect(),
        );
        let stop = Arc::new(AtomicBool::new(false));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    match deque.steal() {
                        Steal::Success(job) => unsafe { job.execute() },
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();

        // Owner: push a burst, pop roughly half of it back, repeat.
        for round in 0..ROUNDS {
            unsafe {
                for job in &jobs[round * BURST..(round + 1) * BURST] {
                    deque.push(JobRef::new(job as *const TallyJob));
                }
                for _ in 0..BURST / 2 {
                    if let Some(job) = deque.pop() {
                        job.execute();
                    }
                }
            }
        }
        // Drain what the thieves left behind.
        unsafe {
            while let Some(job) = deque.pop() {
                job.execute();
            }
        }
        stop.store(true, Ordering::SeqCst);
        for t in thieves {
            t.join().unwrap();
        }

        assert_eq!(
            total.load(Ordering::SeqCst),
            ROUNDS * BURST,
            "total executions must equal total jobs"
        );
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(
                job.executed.load(Ordering::SeqCst),
                1,
                "job {i} must execute exactly once"
            );
        }
    }
}
