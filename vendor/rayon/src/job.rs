//! Type-erased units of work the scheduler moves between threads.
//!
//! A [`JobRef`] is two raw pointers (data + execute fn), `Copy`, and what
//! the deques and the injector actually store. The two concrete job kinds
//! mirror real rayon:
//!
//! * [`StackJob`] — lives on the stack of the thread that created it
//!   (`join`'s second closure, an `in_worker` root). The creator blocks
//!   until the job's latch is set, which is what makes handing out raw
//!   pointers to it sound.
//! * [`HeapJob`] — boxed, fire-and-forget (scope spawns). The closure is
//!   responsible for its own panic handling and completion signalling.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// Type-erased pointer to a job, executable exactly once.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// A JobRef is moved across threads by construction (that is its job); the
// underlying data's thread-safety obligations are discharged by the
// `Send` bounds on the closures the concrete job types accept.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Creates a job ref from a pointer to a live job.
    ///
    /// # Safety
    ///
    /// `data` must stay valid until the job has executed (stack jobs:
    /// the creator blocks on the latch; heap jobs: the box is leaked).
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: <T as Job>::execute,
        }
    }

    /// Runs the job. May only be called once per underlying job.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }

    /// Identity of the underlying job, for pop-back comparisons.
    #[inline]
    pub(crate) fn id(&self) -> *const () {
        self.pointer
    }
}

/// Implemented by concrete job types; `this` is the erased self pointer.
pub(crate) trait Job {
    /// # Safety
    ///
    /// `this` must point at a live instance of the implementing type, and
    /// must be called at most once for it.
    unsafe fn execute(this: *const ());
}

/// Outcome slot of a [`StackJob`].
pub(crate) enum JobResult<R> {
    /// Not executed (yet, or abandoned after a sibling panic).
    None,
    /// Completed with a value.
    Ok(R),
    /// The closure panicked; the payload is re-thrown at the join point.
    Panic(Box<dyn Any + Send>),
}

/// A job allocated on the creating thread's stack. The creator must not
/// return before the job has executed (or been explicitly abandoned).
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F) -> StackJob<L, F, R> {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// # Safety
    ///
    /// The caller keeps `self` alive until the returned ref has executed
    /// (or has been popped back and abandoned).
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Takes the result. Only sound after the job executed (latch set, or
    /// executed inline by the owner) — or after [`Self::abandon`].
    ///
    /// # Safety
    ///
    /// No concurrent access to the job may exist any more.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }

    /// Drops the closure without running it (used when a `join` sibling
    /// panicked and the job was popped back unexecuted).
    ///
    /// # Safety
    ///
    /// The job must have been reclaimed by the owner (popped back from
    /// the local deque) — no other thread may race to execute it.
    pub(crate) unsafe fn abandon(&self) {
        (*self.func.get()).take();
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get()).take().expect("stack job executed twice");
        *this.result.get() = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        // Last touch: after the latch is set the owner may free the job.
        Latch::set(&this.latch);
    }
}

/// A boxed fire-and-forget job (scope spawns). The closure must handle
/// its own panics and signal its own completion — nothing waits on the
/// job itself.
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    pub(crate) fn new(func: F) -> Box<HeapJob<F>> {
        Box::new(HeapJob { func })
    }

    /// Leaks the box into a job ref; `execute` re-boxes and frees it.
    ///
    /// # Safety
    ///
    /// The returned ref must be executed exactly once, and the closure's
    /// captures must outlive that execution (a scope enforces this by
    /// waiting for its pending-job count).
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef::new(Box::into_raw(self) as *const Self)
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce() + Send,
{
    unsafe fn execute(this: *const ()) {
        let this = Box::from_raw(this as *mut Self);
        (this.func)();
    }
}
