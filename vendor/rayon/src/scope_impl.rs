//! `scope` — structured spawning of jobs that may borrow from the
//! enclosing stack frame.
//!
//! A scope migrates into the target registry (like `join`), runs its body
//! on a worker, and then *waits* — helping execute work the whole time —
//! until every job spawned inside it has completed. That wait is what
//! makes handing `'scope` borrows to heap jobs sound.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use crate::job::HeapJob;
use crate::latch::SpinLatch;
use crate::registry::{self, Registry};

/// A scope handle; see [`scope`]. Spawned closures receive `&Scope` again
/// so they can spawn recursively.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Spawned jobs not yet completed.
    pending: AtomicUsize,
    /// First panic from a spawned job, re-thrown when the scope ends.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// The worker running the scope body, unparked on completion.
    owner: Thread,
    /// Borrows handed to spawned jobs live at least as long as `'scope`.
    marker: PhantomData<ScopeBody<'scope>>,
}

/// Marker alias tying a scope to the closures spawned into it.
type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + Sync + 'scope>;

/// Creates a scope in the current registry (installed pool, worker's own
/// registry, or the global one) and blocks until the body *and every job
/// it spawned* have finished. Panics from the body or any spawned job are
/// re-thrown here once all jobs are accounted for.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    scope_in(Registry::current(), op)
}

/// [`scope`] targeted at a specific registry (`ThreadPool::scope`).
pub(crate) fn scope_in<'scope, OP, R>(registry: Arc<Registry>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    registry.in_worker(move || {
        let (registry, index) = registry::current_worker().expect("in_worker must run on a worker");
        let scope = Scope {
            registry,
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            owner: std::thread::current(),
            marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Wait for the spawned jobs even when the body panicked: they
        // borrow from frames below us.
        scope.wait_all(index);
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = scope.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
                {
                    panic::resume_unwind(payload);
                }
                r
            }
        }
    })
}

/// `*const Scope` that may cross threads; sound because the scope outlives
/// every spawned job (enforced by `wait_all`).
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Method (not field) access, so closures capture the whole `Send`
    /// wrapper rather than the raw pointer field.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the scope. It may run on any worker of the
    /// scope's registry, any time before the scope ends; it may borrow
    /// anything that outlives `'scope`.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // Count before publishing: the count can only reach zero once
        // every published job has run.
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let job = HeapJob::new(move || {
            // Safety: the scope waits for `pending` to drain before its
            // frame is torn down, so the pointer is live.
            let scope = unsafe { &*scope_ptr.get() };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.record_panic(payload);
            }
            scope.complete_one();
        });
        // Safety: executed exactly once by the registry; captures outlive
        // the scope's wait.
        let job_ref = unsafe { job.into_job_ref() };
        self.registry.push_local_or_inject(job_ref);
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn complete_one(&self) {
        // Clone the owner handle first: once the count hits zero the
        // scope frame may be torn down.
        let owner = self.owner.clone();
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            owner.unpark();
        }
    }

    /// Helps execute work until every spawned job has completed.
    fn wait_all(&self, index: usize) {
        while self.pending.load(Ordering::SeqCst) != 0 {
            // Safety: called on the worker that owns `index` (the one
            // running the scope body).
            if let Some(job) = unsafe { self.registry.find_work(index) } {
                unsafe { job.execute() };
            } else {
                SpinLatch::park_brief();
            }
        }
    }
}
