//! The worker-thread registry: one [`Deque`] per worker, a shared
//! injector for jobs arriving from outside the pool, and the park/wake
//! protocol that lets idle workers sleep without missing work.
//!
//! ## Thread roles
//!
//! *Workers* are the registry's own threads: they run a
//! pop-local → steal → injector loop and park when everything is dry.
//! *External threads* (the application) never execute pool work — they
//! [`Registry::in_worker`] a stack job into the injector and block on a
//! [`LockLatch`] until a worker has run it. That makes the concurrency
//! bound exact: at most `num_threads` closures of a pool execute at any
//! instant, however deeply parallel calls nest, because *only* the
//! registry's workers ever execute them. (The previous implementation
//! approximated this with a shared permit budget over ad-hoc scoped
//! threads; the invariant is unchanged and regression-tested, the
//! mechanism is now a real pool.)
//!
//! ## Sleep protocol
//!
//! A parking worker increments `parked` (SeqCst) *before* re-checking the
//! queues under the sleep lock; a publisher makes its job visible, issues
//! a SeqCst fence, then reads `parked` — if it reads 0 the parker's
//! re-check is ordered after the publish and finds the job, and if it
//! reads ≥ 1 it takes the lock and notifies. A timed wait bounds any
//! interleaving this pairing does not cover.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::deque::{Deque, Steal};
use crate::job::{JobRef, JobResult, StackJob};
use crate::latch::LockLatch;

/// Counters of scheduler activity, exposed through
/// [`crate::ThreadPool::scheduler_stats`] and
/// [`crate::current_scheduler_stats`] so solver layers can report how the
/// pool behaved (see `SolveStats` in the engine crates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Times a worker parked for lack of work.
    pub parks: u64,
}

/// Ambient worker count when no pool is installed: `RAYON_NUM_THREADS`
/// (like real rayon's global pool), else `available_parallelism()`.
pub(crate) fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    parked: AtomicUsize,
    /// Workers currently in their steal/injector search phase: a
    /// publisher need not wake anyone while a searcher is about to find
    /// the job anyway (wake throttling, see [`Registry::wake_one`]).
    searching: AtomicUsize,
    /// A worker was notified but has not re-entered its search loop yet;
    /// further wakes are suppressed until it does (bounds the notify
    /// storm when many small jobs are published back-to-back, which on
    /// few cores otherwise costs a condvar syscall per `join`).
    wake_pending: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
    parks: AtomicU64,
}

struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    /// Set for the lifetime of a worker thread: its registry and index.
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
    /// Registry installed by `ThreadPool::install` on this thread
    /// (restored by a drop guard — panic-safe).
    static INSTALLED: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// `(registry, index)` of the current thread if it is a pool worker.
pub(crate) fn current_worker() -> Option<(Arc<Registry>, usize)> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .map(|c| (Arc::clone(&c.registry), c.index))
    })
}

/// The registry installed on this thread by `ThreadPool::install`, if any.
pub(crate) fn installed_registry() -> Option<Arc<Registry>> {
    INSTALLED.with(|r| r.borrow().clone())
}

/// RAII guard for `ThreadPool::install`: swaps the installed registry in
/// and restores the previous value on drop — including on unwind, so a
/// panicking closure cannot leave a stale pool installed on the thread.
pub(crate) struct InstallGuard {
    prev: Option<Arc<Registry>>,
}

impl InstallGuard {
    pub(crate) fn new(registry: Arc<Registry>) -> InstallGuard {
        InstallGuard {
            prev: INSTALLED.with(|r| r.replace(Some(registry))),
        }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

impl Registry {
    /// Creates a registry and spawns its workers, returning the join
    /// handles (dropped for the detached global registry).
    pub(crate) fn spawn(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let n = num_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            parked: AtomicUsize::new(0),
            searching: AtomicUsize::new(0),
            wake_pending: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let handles = (0..n)
            .map(|index| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{index}"))
                    .spawn(move || worker_main(reg, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    /// The lazily created ambient registry (`RAYON_NUM_THREADS` workers).
    pub(crate) fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let (registry, handles) = Registry::spawn(default_threads());
            // The global pool lives for the process: detach the workers.
            drop(handles);
            registry
        }))
    }

    /// The registry parallel constructs on this thread target, in
    /// precedence order: installed pool → own registry (worker threads)
    /// → global.
    pub(crate) fn current() -> Arc<Registry> {
        if let Some(r) = installed_registry() {
            return r;
        }
        if let Some((r, _)) = current_worker() {
            return r;
        }
        Registry::global()
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    pub(crate) fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }

    /// Queues a job from outside the pool (or from a worker of another
    /// registry) and wakes a worker for it.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.wake_one();
    }

    /// Pushes a job on worker `index`'s own deque and wakes a thief.
    ///
    /// # Safety
    ///
    /// May only be called on the worker thread that owns `index`.
    pub(crate) unsafe fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].push(job);
        self.wake_one();
    }

    /// Routes a job to the local deque when called on one of this
    /// registry's workers, to the injector otherwise (scope spawns).
    pub(crate) fn push_local_or_inject(self: &Arc<Self>, job: JobRef) {
        match current_worker() {
            Some((reg, index)) if Arc::ptr_eq(&reg, self) => unsafe {
                self.push_local(index, job);
            },
            _ => self.inject(job),
        }
    }

    /// Owner-only pop of worker `index`'s deque.
    ///
    /// # Safety
    ///
    /// May only be called on the worker thread that owns `index`.
    pub(crate) unsafe fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].pop()
    }

    /// Finds a job for worker `index`: local LIFO first (join locality),
    /// then stealing a sibling's oldest job, then the injector.
    ///
    /// # Safety
    ///
    /// May only be called on the worker thread that owns `index`.
    pub(crate) unsafe fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_local(index) {
            return Some(job);
        }
        if let Some(job) = self.steal_for(index) {
            return Some(job);
        }
        self.pop_injected()
    }

    /// Steals from the other workers' deques, round-robin from `index`.
    pub(crate) fn steal_for(&self, index: usize) -> Option<JobRef> {
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            loop {
                match self.deques[victim].steal() {
                    Steal::Success(job) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    pub(crate) fn pop_injected(&self) -> Option<JobRef> {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    fn has_visible_work(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
        {
            return true;
        }
        self.deques.iter().any(|d| !d.is_empty())
    }

    /// Wakes one parked worker if any. Callers publish their job first;
    /// the fence pairs with the parker's SeqCst increment (module docs).
    ///
    /// Throttled: no notify while a worker is already searching (it will
    /// find the job), or while a previously notified worker has not
    /// started searching yet (it will). A wake lost to these heuristics'
    /// races is recovered by the parker's under-lock work re-check and by
    /// the timed wait backstop.
    fn wake_one(&self) {
        fence(Ordering::SeqCst);
        if self.searching.load(Ordering::SeqCst) > 0 || self.wake_pending.load(Ordering::SeqCst) {
            return;
        }
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.wake_pending.store(true, Ordering::SeqCst);
            self.sleep_cond.notify_one();
        }
    }

    fn wake_all(&self) {
        let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.sleep_cond.notify_all();
    }

    /// Parks the calling worker until woken (or a backstop timeout).
    fn sleep(&self) {
        let guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.parked.fetch_add(1, Ordering::SeqCst);
        if self.has_visible_work() || self.shutdown.load(Ordering::SeqCst) {
            self.parked.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.parks.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sleep_cond
            .wait_timeout(guard, Duration::from_millis(100));
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Runs `op` on a worker of this registry: inline when already on
    /// one, else injected as a stack job with the caller blocked on a
    /// lock latch (panics propagate to the caller).
    pub(crate) fn in_worker<OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((reg, _)) = current_worker() {
            if Arc::ptr_eq(&reg, self) {
                return op();
            }
        }
        let job = StackJob::new(LockLatch::new(), op);
        unsafe {
            self.inject(job.as_job_ref());
        }
        job.latch().wait();
        match unsafe { job.take_result() } {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => std::panic::resume_unwind(p),
            JobResult::None => unreachable!("injected job completed without a result"),
        }
    }

    /// Signals the workers to exit once the queues drain.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx {
            registry: Arc::clone(&registry),
            index,
        })
    });
    loop {
        // Safety: this thread owns deque `index` for its whole life.
        if let Some(job) = unsafe { registry.pop_local(index) } {
            // Both job kinds catch panics internally (StackJob into its
            // result slot, scope spawns into the scope), so execution
            // never unwinds the worker loop.
            unsafe { job.execute() };
            continue;
        }
        // Search phase: announce it (and clear any pending-wake debt, as
        // the notified worker others are waiting on may be us) so that
        // publishers can skip redundant notifies while we scan.
        registry.wake_pending.store(false, Ordering::SeqCst);
        registry.searching.fetch_add(1, Ordering::SeqCst);
        let job = registry
            .steal_for(index)
            .or_else(|| registry.pop_injected());
        registry.searching.fetch_sub(1, Ordering::SeqCst);
        if let Some(job) = job {
            unsafe { job.execute() };
            continue;
        }
        if registry.shutdown.load(Ordering::SeqCst) {
            break;
        }
        registry.sleep();
    }
    WORKER.with(|w| *w.borrow_mut() = None);
}
