//! Vendored work-stealing stand-in for the `rayon` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the API subset the workspace uses — `ThreadPoolBuilder` /
//! `ThreadPool::{install, scope}`, `join`, `scope`, and
//! `into_par_iter().find_map_any(..)` over index ranges — implemented as
//! a real work-stealing runtime, architecturally equivalent to the real
//! crate (so a future swap to crates.io rayon stays a dependency edit):
//!
//! * each pool is a `registry` of long-lived worker threads,
//!   one Chase–Lev `deque` per worker plus a shared injector for
//!   work arriving from outside the pool;
//! * [`join`] publishes its second closure on the local deque where idle
//!   workers steal it, and pops it back for inline execution when nobody
//!   did — nested joins therefore cost a deque push/pop, not a thread;
//! * idle workers park on a condvar and are woken when work appears;
//!   steal and park counts are surfaced via [`SchedulerStats`];
//! * [`scope`] provides structured spawns that may borrow from the
//!   enclosing frame.
//!
//! Semantics preserved from the previous permit-budget implementation
//! (regression-tested here and in `tests/nested_parallel_stress.rs`):
//!
//! * **the concurrency bound is global across arbitrary nesting** — only
//!   a pool's `N` workers ever execute its closures (external callers
//!   block on a latch instead of participating), so nested parallel calls
//!   share one allowance instead of multiplying it;
//! * **`RAYON_NUM_THREADS`** sizes the ambient (global) pool used when no
//!   pool is installed;
//! * **panic safety via drop guards** — a panicking closure propagates to
//!   the caller with the installed-pool thread-local restored and every
//!   worker back in its scheduling loop; a poisoned solve cannot degrade
//!   later parallelism on the thread.
//!
//! `find_map_any` returns *some* match (not necessarily the first), stops
//! handing out work once a match is found, and is implemented as a
//! recursive [`join`] split over the index range — the binary splitting
//! that gives work-stealing its balanced distribution.

mod deque;
mod job;
mod latch;
mod registry;

mod join_impl;
mod scope_impl;

pub use join_impl::join;
pub use registry::SchedulerStats;
pub use scope_impl::{scope, Scope};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use registry::Registry;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Error type of [`ThreadPoolBuilder::build`] (construction cannot fail in
/// this implementation; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means the ambient default
    /// (`RAYON_NUM_THREADS`, else all cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers. Never fails in this
    /// implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            registry::default_threads()
        } else {
            self.num_threads
        };
        let (registry, handles) = Registry::spawn(n);
        Ok(ThreadPool { registry, handles })
    }
}

/// A work-stealing pool of `N` worker threads. Parallel constructs run
/// under [`Self::install`] (or entered via [`Self::scope`]) execute on
/// the pool's workers only, so at most `N` of their closures are live at
/// any instant — across arbitrary nesting, because nested `join`s and
/// races stay on the same workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `f` on the calling thread with this pool installed as the
    /// target of parallel constructs inside it. The previous installation
    /// is restored afterwards — including when `f` panics, via a drop
    /// guard, so an unwinding test run cannot leave a stale pool
    /// installed on the thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = registry::InstallGuard::new(Arc::clone(&self.registry));
        f()
    }

    /// Creates a [`scope`] whose body runs on one of this pool's workers
    /// and whose spawns execute on the pool; blocks until all complete.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        scope_impl::scope_in(Arc::clone(&self.registry), op)
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Steal/park counters accumulated by this pool's workers.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.registry.stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker count of the current registry (installed pool, else the
/// worker's own pool, else the ambient default), mirroring
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    Registry::current().num_threads()
}

/// Steal/park counters of the current registry (see
/// [`current_num_threads`] for the resolution order). For the ambient
/// pool the counters are process-lifetime totals: diff two snapshots to
/// attribute activity to a region.
pub fn current_scheduler_stats() -> SchedulerStats {
    Registry::current().stats()
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the
/// same name (only the subset the workspace needs).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

/// Shared state of one `find_map_any` race.
struct FindCtx<'a, T, F> {
    f: &'a F,
    found: &'a AtomicBool,
    slot: &'a Mutex<Option<T>>,
    grain: usize,
}

fn find_split<T, F>(lo: usize, hi: usize, ctx: &FindCtx<'_, T, F>)
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    // Early-cancel: a found match prunes every subtree not yet started.
    if ctx.found.load(Ordering::Relaxed) {
        return;
    }
    if hi - lo <= ctx.grain {
        for i in lo..hi {
            if ctx.found.load(Ordering::Relaxed) {
                return;
            }
            if let Some(hit) = (ctx.f)(i) {
                let mut slot = ctx.slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(hit);
                }
                ctx.found.store(true, Ordering::Relaxed);
                return;
            }
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        join(|| find_split(lo, mid, ctx), || find_split(mid, hi, ctx));
    }
}

impl ParRange {
    /// Applies `f` to the items across the current pool's workers,
    /// returning some `Some` result if any item produces one ("any"
    /// semantics: not necessarily the match with the smallest index).
    /// Once a match is found, subtrees of the recursive [`join`] split
    /// that have not started yet are cancelled; in-flight calls finish.
    ///
    /// On a 1-worker pool (or a 1-item range) this degrades to a plain
    /// sequential `find_map` on the calling thread.
    pub fn find_map_any<T, F>(self, f: F) -> Option<T>
    where
        T: Send,
        F: Fn(usize) -> Option<T> + Sync,
    {
        let len = self.range.end.saturating_sub(self.range.start);
        if len == 0 {
            return None;
        }
        let registry = Registry::current();
        let threads = registry.num_threads();
        if threads <= 1 || len == 1 {
            return self.range.into_iter().find_map(&f);
        }
        let found = AtomicBool::new(false);
        let slot = Mutex::new(None);
        let ctx = FindCtx {
            f: &f,
            found: &found,
            slot: &slot,
            // Split down to single items once there is enough to keep
            // every worker busy; wide trivial ranges batch up.
            grain: (len / (threads * 8)).max(1),
        };
        let (lo, hi) = (self.range.start, self.range.end);
        registry.in_worker(|| find_split(lo, hi, &ctx));
        slot.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn finds_a_match() {
        let hit =
            (0..1000usize)
                .into_par_iter()
                .find_map_any(|i| if i == 637 { Some(i * 2) } else { None });
        assert_eq!(hit, Some(1274));
    }

    #[test]
    fn exhausted_space_returns_none() {
        let hit = (0..1000usize).into_par_iter().find_map_any(|_| None::<u32>);
        assert_eq!(hit, None);
    }

    #[test]
    fn empty_range_is_none() {
        let hit = (5..5usize).into_par_iter().find_map_any(Some);
        assert_eq!(hit, None);
    }

    #[test]
    fn visits_every_item_when_no_match() {
        let count = AtomicUsize::new(0);
        (0..257usize).into_par_iter().find_map_any(|_| {
            count.fetch_add(1, Ordering::Relaxed);
            None::<()>
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let b_ran = AtomicBool::new(false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|_| join(|| panic!("boom-a"), || b_ran.store(true, Ordering::SeqCst)))
        }));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom-a"));
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|_| join(|| 7usize, || panic!("boom-b")))
        }));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom-b"));
    }

    #[test]
    fn scope_runs_spawns_to_completion() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_spawns_recursively() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..4 {
                        s.spawn(|_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 4 + 16);
    }

    #[test]
    fn scope_propagates_spawn_panic_after_draining() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("spawn-boom"));
                for _ in 0..8 {
                    s.spawn(|_| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        }));
        assert!(result.is_err(), "spawn panic must propagate");
        // Structured: every sibling spawn completed before the panic
        // surfaced — no job outlives its scope.
        assert_eq!(finished.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn install_bounds_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        pool.install(|| {
            (0..64usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn single_worker_pool_is_strictly_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        pool.install(|| {
            (0..32usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_find_map_any_works() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hit = pool.install(|| {
            (0..8usize).into_par_iter().find_map_any(|i| {
                (0..8usize).into_par_iter().find_map_any(|j| {
                    if i == 3 && j == 5 {
                        Some(i * 10 + j)
                    } else {
                        None
                    }
                })
            })
        });
        assert_eq!(hit, Some(35));
    }

    /// Regression test for the historical nested-oversubscription bug:
    /// nested parallel calls must never run more closures than the pool
    /// has workers, at any nesting depth. Under the work-stealing runtime
    /// this holds by construction — only the pool's workers execute jobs
    /// — but the bound is the load-bearing invariant consumers rely on,
    /// so it stays pinned here.
    #[test]
    fn nested_races_never_exceed_the_installed_bound() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        pool.install(|| {
            (0..4usize).into_par_iter().find_map_any(|_| {
                (0..4usize).into_par_iter().find_map_any(|_| {
                    (0..3usize).into_par_iter().find_map_any(|_| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        live.fetch_sub(1, Ordering::SeqCst);
                        None::<()>
                    })
                })
            })
        });
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "nested races exceeded the 2-thread pool: saw {}",
            max_seen.load(Ordering::SeqCst)
        );
    }

    /// A finished sibling's worker must be available to the slow branch's
    /// nested races *before* the outer race completes — idle workers
    /// steal the long tail's work instead of sitting on a joined scope.
    #[test]
    fn finished_siblings_release_allowance_to_the_long_tail() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let fast_taken = AtomicBool::new(false);
        let reached_two_wide = AtomicBool::new(false);
        pool.install(|| {
            (0..2usize).into_par_iter().find_map_any(|_| {
                if !fast_taken.swap(true, Ordering::SeqCst) {
                    // Fast branch: returns immediately, freeing its worker.
                    return None::<()>;
                }
                // Long-tail branch: once the fast sibling's worker is
                // idle, a nested race can run two wide again. Poll
                // briefly — the assertion is on eventual reuse, not on
                // scheduling.
                for _ in 0..500 {
                    let live = AtomicUsize::new(0);
                    let max = AtomicUsize::new(0);
                    (0..2usize).into_par_iter().find_map_any(|_| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        live.fetch_sub(1, Ordering::SeqCst);
                        None::<()>
                    });
                    if max.load(Ordering::SeqCst) >= 2 {
                        reached_two_wide.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                None
            })
        });
        assert!(
            reached_two_wide.load(Ordering::SeqCst),
            "the long-tail branch never regained the freed worker"
        );
    }

    /// A panic unwinding out of a race must propagate to the caller with
    /// the thread-locals restored and every worker back in its loop —
    /// later parallel calls on the same pool must still work and still
    /// respect the bound (the failure mode of leaked state would be
    /// permanent sequential degradation, which proptest's
    /// catch-and-shrink loop would trigger).
    #[test]
    fn panicking_closure_releases_workers_and_thread_locals() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..4usize).into_par_iter().find_map_any(|i| {
                    if i == 0 {
                        panic!("boom");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    None::<()>
                })
            })
        }));
        assert!(boom.is_err());
        assert!(
            registry::installed_registry().is_none(),
            "unwind must restore the pre-install thread-local"
        );
        // The pool is still fully usable: a fresh race completes, visits
        // everything, and stays within the 2-worker bound.
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        pool.install(|| {
            (0..32usize).into_par_iter().find_map_any(|_| {
                count.fetch_add(1, Ordering::SeqCst);
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert_eq!(count.load(Ordering::SeqCst), 32);
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "the pool must still enforce the 2-worker bound after a panic"
        );
    }

    /// The installed pool is restored after `install` returns, and nested
    /// installs layer correctly.
    #[test]
    fn install_restores_previous_bound() {
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 4);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 4);
        });
    }

    /// Unpooled nested races are bounded by the ambient default too (the
    /// global registry has `RAYON_NUM_THREADS` workers and nothing else
    /// executes jobs).
    #[test]
    fn unpooled_nested_races_stay_bounded() {
        let ambient = registry::default_threads();
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        (0..4usize).into_par_iter().find_map_any(|_| {
            (0..4usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(max_seen.load(Ordering::SeqCst) <= ambient);
    }

    /// Early-cancel: once a match is found, un-started subtrees of the
    /// split are pruned — the race must not grind through the whole
    /// range. The timed items make in-flight stragglers visible: only a
    /// bounded handful may still run after the hit at index 0.
    #[test]
    fn find_map_any_cancels_remaining_work_after_a_hit() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let evaluated = AtomicUsize::new(0);
        let hit = pool.install(|| {
            (0..1000usize).into_par_iter().find_map_any(|i| {
                evaluated.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    Some(i)
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    None
                }
            })
        });
        assert_eq!(hit, Some(0));
        let n = evaluated.load(Ordering::SeqCst);
        assert!(
            n < 200,
            "early-cancel failed: {n} of 1000 items ran after an immediate hit"
        );
    }

    /// Work published by a busy worker is stolen by an idle one — the
    /// steal counter moves. (On a long-enough race the probability of
    /// zero steals is negligible: the second worker can only get work by
    /// stealing half the split.)
    #[test]
    fn steals_are_counted() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = pool.scheduler_stats().steals;
        pool.install(|| {
            (0..64usize).into_par_iter().find_map_any(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                None::<()>
            })
        });
        let after = pool.scheduler_stats().steals;
        assert!(
            after > before,
            "a 2-worker race over 64 timed items must involve stealing"
        );
    }

    /// Workers park when the pool runs dry and wake when work arrives.
    #[test]
    fn idle_workers_park_and_wake() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        // Give the freshly spawned workers a moment to find nothing and
        // park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            pool.scheduler_stats().parks > 0,
            "idle workers must park rather than spin"
        );
        // And parked workers still pick up new work promptly.
        let done = AtomicUsize::new(0);
        pool.install(|| {
            (0..8usize).into_par_iter().find_map_any(|_| {
                done.fetch_add(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
