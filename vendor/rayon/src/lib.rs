//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the API subset the workspace uses — `ThreadPoolBuilder` / `ThreadPool::
//! install`, and `into_par_iter().find_map_any(..)` over index ranges —
//! implemented with `std::thread::scope` and an atomic work counter.
//!
//! Semantics match rayon where the workspace relies on them:
//!
//! * `find_map_any` returns *some* match (not necessarily the first), stops
//!   handing out work once a match is found, and runs the closure on
//!   multiple OS threads;
//! * `ThreadPool::install` bounds the concurrency of parallel iterators
//!   running inside the closure — **globally**, across arbitrary nesting:
//!   the installed bound is a shared permit [`Budget`] inherited by every
//!   spawned worker, so nested `find_map_any` calls on workers draw from
//!   the same allowance instead of multiplying it (the historical bug:
//!   workers saw no installed bound, fell back to
//!   `available_parallelism()`, and nested races oversubscribed);
//! * work is handed out index-by-index from a shared atomic counter, so
//!   threads that finish early steal the remaining items.
//!
//! The calling thread always participates in the work loop (as in real
//! rayon), so a `find_map_any` can never deadlock waiting for permits:
//! with the budget exhausted it simply degrades to a sequential loop on
//! the caller.
//!
//! It is NOT a general rayon replacement: no join/scope/par_bridge, no
//! splitting adapters, no work-stealing deques.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// A global concurrency allowance shared by every parallel iterator that
/// runs under one [`ThreadPool::install`] (or, without a pool, under one
/// top-level `find_map_any`). `live` counts threads currently executing a
/// work loop; spawning an extra worker requires winning a permit.
struct Budget {
    limit: usize,
    live: AtomicUsize,
}

impl Budget {
    fn new(limit: usize) -> Self {
        Budget {
            limit: limit.max(1),
            live: AtomicUsize::new(0),
        }
    }

    /// Tries to win one worker permit; never blocks.
    fn try_acquire(&self) -> bool {
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return false;
            }
            match self.live.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self, n: usize) {
        self.live.fetch_sub(n, Ordering::Release);
    }
}

thread_local! {
    /// Budget governing parallel iterators on this thread: set by
    /// [`ThreadPool::install`] on the caller and inherited by every
    /// worker thread [`ParRange::find_map_any`] spawns.
    static CURRENT_BUDGET: RefCell<Option<Arc<Budget>>> = const { RefCell::new(None) };
    /// Whether this thread already holds a permit of `CURRENT_BUDGET`
    /// (worker threads do; the top-level caller does not).
    static HOLDS_PERMIT: Cell<bool> = const { Cell::new(false) };
}

fn current_budget() -> Option<Arc<Budget>> {
    CURRENT_BUDGET.with(|b| b.borrow().clone())
}

/// Ambient parallelism when no pool is installed: `RAYON_NUM_THREADS`
/// (like real rayon's global pool), else `available_parallelism()`.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type of [`ThreadPoolBuilder::build`] (construction cannot fail in
/// this implementation; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means the ambient default
    /// (`RAYON_NUM_THREADS`, else all cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            budget: Arc::new(Budget::new(n)),
        })
    }
}

/// A concurrency bound for parallel iterators run under [`Self::install`].
/// Concurrent `install`s of the same pool share one allowance for their
/// spawned workers, mirroring a real worker pool — though each
/// top-level calling thread always participates in its own work loop
/// (it never blocks on permits), so N concurrent callers can run up to
/// `limit + N - 1` closures at once. Within one caller's tree —
/// the only shape this workspace produces — the bound is exact.
pub struct ThreadPool {
    budget: Arc<Budget>,
}

impl ThreadPool {
    /// Runs `f` with this pool's budget as the ambient parallelism bound
    /// (restoring the previous bound afterwards — including when `f`
    /// panics, so an unwinding test run cannot leave stale thread-locals
    /// on the calling thread).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore {
            prev: Option<Arc<Budget>>,
            prev_permit: bool,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_BUDGET.with(|b| *b.borrow_mut() = self.prev.take());
                HOLDS_PERMIT.with(|h| h.set(self.prev_permit));
            }
        }
        let _restore = Restore {
            prev: CURRENT_BUDGET.with(|b| b.replace(Some(Arc::clone(&self.budget)))),
            prev_permit: HOLDS_PERMIT.with(|h| h.replace(false)),
        };
        f()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.budget.limit
    }
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the
/// same name (only the subset the workspace needs).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Applies `f` to the items on a scoped pool of OS threads, returning
    /// some `Some` result if any item produces one ("any" semantics: not
    /// necessarily the match with the smallest index). Once a match is
    /// found, no further items are handed out; in-flight calls finish.
    ///
    /// The calling thread works through items itself and spawns at most
    /// `limit - 1` extra workers, where `limit` is the installed pool
    /// bound (or the ambient default): each extra worker costs one permit
    /// of the shared [`Budget`], which nested calls on worker threads
    /// draw from too — within one top-level call tree, total live
    /// workers never exceed the bound, however deep the nesting. (Each
    /// *additional* concurrent top-level caller on the same budget adds
    /// at most its own thread: callers always run, never block.)
    pub fn find_map_any<T, F>(self, f: F) -> Option<T>
    where
        T: Send,
        F: Fn(usize) -> Option<T> + Sync,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len == 0 {
            return None;
        }
        let budget = match current_budget() {
            Some(b) => b,
            // No installed pool: bound this call tree by the ambient
            // default. Workers (and the caller, below) inherit the ad-hoc
            // budget, so even fully unpooled nested races stay bounded.
            None => Arc::new(Budget::new(default_threads())),
        };
        // Releases the won permits and (for a top-level caller) the
        // caller's own charge + thread-local membership when the call
        // ends — on normal return and on unwind alike, so a panicking
        // closure cannot leak budget allowance or leave this thread's
        // `CURRENT_BUDGET`/`HOLDS_PERMIT` pointing at a dead call.
        struct PermitGuard {
            budget: Arc<Budget>,
            extra: usize,
            /// Whether the caller's own charge is still outstanding
            /// (returned early once its work loop ends, or here on
            /// unwind).
            charged: bool,
            /// `Some(previous TLS budget)` iff this call installed the
            /// budget in the caller's thread-locals.
            prev_budget: Option<Option<Arc<Budget>>>,
        }
        impl PermitGuard {
            /// Returns the caller's charge as soon as its work loop is
            /// done — the thread then only waits for the scope join, and
            /// tail workers can win the slot for their nested races.
            fn release_caller_charge(&mut self) {
                if std::mem::take(&mut self.charged) {
                    self.budget.release(1);
                }
            }
        }
        impl Drop for PermitGuard {
            fn drop(&mut self) {
                self.budget.release(self.extra);
                if std::mem::take(&mut self.charged) {
                    self.budget.release(1);
                }
                if let Some(prev) = self.prev_budget.take() {
                    CURRENT_BUDGET.with(|b| *b.borrow_mut() = prev);
                    HOLDS_PERMIT.with(|h| h.set(false));
                }
            }
        }
        let mut guard = PermitGuard {
            budget: Arc::clone(&budget),
            extra: 0,
            charged: false,
            prev_budget: None,
        };
        if !HOLDS_PERMIT.with(|h| h.get()) {
            // The top-level caller always runs (never blocks on permits):
            // charge its work loop against the budget and make this
            // thread a budget member for the duration, so nested calls
            // inside `f` draw from the same allowance instead of
            // re-charging or re-deriving one.
            budget.live.fetch_add(1, Ordering::Acquire);
            guard.charged = true;
            HOLDS_PERMIT.with(|h| h.set(true));
            guard.prev_budget = Some(CURRENT_BUDGET.with(|b| b.replace(Some(Arc::clone(&budget)))));
        }

        // Extra workers beyond the caller: cap by items and the bound,
        // then try to win permits (nested calls lose these races once the
        // budget is saturated and fall back to the sequential path).
        let want = budget.limit.min(len).saturating_sub(1);
        while guard.extra < want && budget.try_acquire() {
            guard.extra += 1;
        }
        let extra = guard.extra;

        if extra == 0 {
            self.range.into_iter().find_map(&f)
        } else {
            // Each spawned worker owns its permit from here on and
            // releases it the moment its work loop ends (normal exit or
            // unwind) — not when the whole scope joins — so a long-tail
            // sibling item can re-win the allowance for its nested races
            // instead of leaving it pinned on an idle, already-finished
            // worker.
            guard.extra = 0;
            let next = AtomicUsize::new(0);
            let found = AtomicBool::new(false);
            let slot: Mutex<Option<T>> = Mutex::new(None);
            let f = &f;
            let budget_ref = &budget;
            let drain = |is_caller: bool| {
                struct WorkerPermit<'a>(Option<&'a Budget>);
                impl Drop for WorkerPermit<'_> {
                    fn drop(&mut self) {
                        if let Some(b) = self.0 {
                            b.release(1);
                        }
                    }
                }
                let _permit = WorkerPermit((!is_caller).then_some(&**budget_ref));
                if !is_caller {
                    // Workers inherit the budget (and their permit), so
                    // nested parallel calls share the global allowance.
                    CURRENT_BUDGET.with(|b| *b.borrow_mut() = Some(Arc::clone(budget_ref)));
                    HOLDS_PERMIT.with(|h| h.set(true));
                }
                while !found.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    if let Some(hit) = f(start + i) {
                        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                        if guard.is_none() {
                            *guard = Some(hit);
                        }
                        found.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            };
            std::thread::scope(|s| {
                for _ in 0..extra {
                    s.spawn(|| drain(false));
                }
                drain(true);
                // The caller's work loop is done; it now only waits for
                // the join, so its charge goes back too (on unwind the
                // guard's drop returns it instead).
                guard.release_caller_charge();
            });
            slot.into_inner().unwrap_or_else(|e| e.into_inner())
        }
        // `guard` drops here: permits released, thread-locals restored.
    }
}

/// The ambient worker count, mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    match current_budget() {
        Some(b) => b.limit,
        None => default_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn finds_a_match() {
        let hit =
            (0..1000usize)
                .into_par_iter()
                .find_map_any(|i| if i == 637 { Some(i * 2) } else { None });
        assert_eq!(hit, Some(1274));
    }

    #[test]
    fn exhausted_space_returns_none() {
        let hit = (0..1000usize).into_par_iter().find_map_any(|_| None::<u32>);
        assert_eq!(hit, None);
    }

    #[test]
    fn empty_range_is_none() {
        let hit = (5..5usize).into_par_iter().find_map_any(Some);
        assert_eq!(hit, None);
    }

    #[test]
    fn visits_every_item_when_no_match() {
        let count = AtomicUsize::new(0);
        (0..257usize).into_par_iter().find_map_any(|_| {
            count.fetch_add(1, Ordering::Relaxed);
            None::<()>
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn install_bounds_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        pool.install(|| {
            (0..64usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn nested_find_map_any_works() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hit = pool.install(|| {
            (0..8usize).into_par_iter().find_map_any(|i| {
                (0..8usize).into_par_iter().find_map_any(|j| {
                    if i == 3 && j == 5 {
                        Some(i * 10 + j)
                    } else {
                        None
                    }
                })
            })
        });
        assert_eq!(hit, Some(35));
    }

    /// Regression test for the nested-oversubscription bug: workers
    /// spawned by an outer `find_map_any` did not inherit the installed
    /// bound, so their nested parallel calls fell back to
    /// `available_parallelism()` and the race multiplied its thread
    /// count. With the shared budget, the *innermost* closures — the only
    /// places actually doing work — never run on more threads than the
    /// pool allows, at any nesting depth.
    #[test]
    fn nested_races_never_exceed_the_installed_bound() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        pool.install(|| {
            (0..4usize).into_par_iter().find_map_any(|_| {
                (0..4usize).into_par_iter().find_map_any(|_| {
                    (0..3usize).into_par_iter().find_map_any(|_| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        live.fetch_sub(1, Ordering::SeqCst);
                        None::<()>
                    })
                })
            })
        });
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "nested races exceeded the 2-thread pool: saw {}",
            max_seen.load(Ordering::SeqCst)
        );
    }

    /// A finished sibling's allowance must be reusable by the slow
    /// branch's nested races *before* the outer join: permits go back at
    /// drain-exit, not at scope teardown, so a long-tail branch is not
    /// pinned sequential while the rest of the pool sits idle.
    #[test]
    fn finished_siblings_release_allowance_to_the_long_tail() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let fast_taken = AtomicBool::new(false);
        let reached_two_wide = AtomicBool::new(false);
        pool.install(|| {
            (0..2usize).into_par_iter().find_map_any(|_| {
                if !fast_taken.swap(true, Ordering::SeqCst) {
                    // Fast branch: returns immediately, freeing its slot.
                    return None::<()>;
                }
                // Long-tail branch: once the fast sibling's slot is back,
                // a nested race can run two wide again. Poll briefly —
                // the assertion is on eventual reuse, not on scheduling.
                for _ in 0..500 {
                    let live = AtomicUsize::new(0);
                    let max = AtomicUsize::new(0);
                    (0..2usize).into_par_iter().find_map_any(|_| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        live.fetch_sub(1, Ordering::SeqCst);
                        None::<()>
                    });
                    if max.load(Ordering::SeqCst) >= 2 {
                        reached_two_wide.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                None
            })
        });
        assert!(
            reached_two_wide.load(Ordering::SeqCst),
            "the long-tail branch never regained the freed allowance"
        );
    }

    /// A panic unwinding out of a race must release the caller charge and
    /// worker permits and restore the thread-locals — otherwise every
    /// later `find_map_any` on this thread loses its permit races and
    /// silently degrades to sequential execution (the failure mode of
    /// straight-line cleanup, which proptest's catch-and-shrink loop
    /// would trigger).
    #[test]
    fn panicking_closure_releases_budget_and_thread_locals() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..4usize).into_par_iter().find_map_any(|i| {
                    if i == 0 {
                        panic!("boom");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    None::<()>
                })
            })
        }));
        assert!(boom.is_err());
        assert!(
            !HOLDS_PERMIT.with(|h| h.get()),
            "unwind must clear the permit flag"
        );
        assert!(
            current_budget().is_none(),
            "unwind must restore the pre-install budget"
        );
        assert_eq!(
            pool.budget.live.load(Ordering::SeqCst),
            0,
            "unwind must return every permit to the pool"
        );
        // And the restored allowance is usable: a fresh race on the same
        // pool stays within bound (and typically runs two wide again — a
        // leaked permit would force every later call 1-wide, though how
        // often the extra worker gets scheduled is up to the OS, so only
        // the bound is asserted).
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        pool.install(|| {
            (0..32usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "the restored budget must still enforce the 2-thread bound"
        );
    }

    /// The installed allowance is restored after `install` returns, and
    /// nested installs layer correctly.
    #[test]
    fn install_restores_previous_bound() {
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 4);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 4);
        });
    }

    /// Unpooled nested races are bounded by the ambient default too (the
    /// ad-hoc budget is inherited by workers).
    #[test]
    fn unpooled_nested_races_stay_bounded() {
        let ambient = super::default_threads();
        let live = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        (0..4usize).into_par_iter().find_map_any(|_| {
            (0..4usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(max_seen.load(Ordering::SeqCst) <= ambient);
    }
}
