//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the API subset the workspace uses — `ThreadPoolBuilder` / `ThreadPool::
//! install`, and `into_par_iter().find_map_any(..)` over index ranges —
//! implemented with `std::thread::scope` and an atomic work counter.
//!
//! Semantics match rayon where the workspace relies on them:
//!
//! * `find_map_any` returns *some* match (not necessarily the first), stops
//!   handing out work once a match is found, and runs the closure on
//!   multiple OS threads;
//! * `ThreadPool::install` bounds the concurrency of parallel iterators
//!   running inside the closure (via a scoped thread-local), including in
//!   nested `find_map_any` calls on worker threads;
//! * work is handed out index-by-index from a shared atomic counter, so
//!   threads that finish early steal the remaining items.
//!
//! It is NOT a general rayon replacement: no join/scope/par_bridge, no
//! splitting adapters, no work-stealing deques.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

thread_local! {
    /// Effective worker count installed by [`ThreadPool::install`];
    /// `0` means "use all available parallelism".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed != 0 {
        return installed;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type of [`ThreadPoolBuilder::build`] (construction cannot fail in
/// this implementation; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means all cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A concurrency bound for parallel iterators run under [`Self::install`].
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.get();
            t.set(self.threads);
            let out = f();
            t.set(prev);
            out
        })
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the
/// same name (only the subset the workspace needs).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Applies `f` to the items on a scoped pool of OS threads, returning
    /// some `Some` result if any item produces one ("any" semantics: not
    /// necessarily the match with the smallest index). Once a match is
    /// found, no further items are handed out; in-flight calls finish.
    pub fn find_map_any<T, F>(self, f: F) -> Option<T>
    where
        T: Send,
        F: Fn(usize) -> Option<T> + Sync,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len == 0 {
            return None;
        }
        let workers = effective_threads().min(len);
        if workers <= 1 {
            return self.range.into_iter().find_map(f);
        }

        let next = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        let slot: Mutex<Option<T>> = Mutex::new(None);
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let next = &next;
                let found = &found;
                let slot = &slot;
                s.spawn(move || {
                    POOL_THREADS.with(|t| t.set(workers));
                    while !found.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        if let Some(hit) = f(start + i) {
                            let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                            if guard.is_none() {
                                *guard = Some(hit);
                            }
                            found.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        slot.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// The ambient worker count, mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    effective_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn finds_a_match() {
        let hit =
            (0..1000usize)
                .into_par_iter()
                .find_map_any(|i| if i == 637 { Some(i * 2) } else { None });
        assert_eq!(hit, Some(1274));
    }

    #[test]
    fn exhausted_space_returns_none() {
        let hit = (0..1000usize).into_par_iter().find_map_any(|_| None::<u32>);
        assert_eq!(hit, None);
    }

    #[test]
    fn empty_range_is_none() {
        let hit = (5..5usize).into_par_iter().find_map_any(Some);
        assert_eq!(hit, None);
    }

    #[test]
    fn visits_every_item_when_no_match() {
        let count = AtomicUsize::new(0);
        (0..257usize).into_par_iter().find_map_any(|_| {
            count.fetch_add(1, Ordering::Relaxed);
            None::<()>
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn install_bounds_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        pool.install(|| {
            (0..64usize).into_par_iter().find_map_any(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                None::<()>
            })
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn nested_find_map_any_works() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hit = pool.install(|| {
            (0..8usize).into_par_iter().find_map_any(|i| {
                (0..8usize).into_par_iter().find_map_any(|j| {
                    if i == 3 && j == 5 {
                        Some(i * 10 + j)
                    } else {
                        None
                    }
                })
            })
        });
        assert_eq!(hit, Some(35));
    }
}
