//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] convenience methods
//! (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed across platforms, which is all the workload generators
//! and differential tests require. Range sampling uses multiply-shift
//! (Lemire) which has negligible bias for the small ranges used here; it is
//! NOT a cryptographic or statistically rigorous replacement for the real
//! `rand` crate.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample a value of `Self` uniformly from a range type `R`.
///
/// Implemented for `Range` and `RangeInclusive` over the integer types the
/// workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

/// Types that can be drawn directly with [`RngExt::random`].
pub trait FromRandom {
    /// Builds a value from 64 uniformly random bits.
    fn from_random(bits: u64) -> Self;
}

impl FromRandom for u64 {
    fn from_random(bits: u64) -> Self {
        bits
    }
}

impl FromRandom for u32 {
    fn from_random(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl FromRandom for bool {
    fn from_random(bits: u64) -> Self {
        bits >> 63 != 0
    }
}

impl FromRandom for f64 {
    fn from_random(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64, isize => usize);

/// Lemire's multiply-shift: maps a uniform `u64` onto `0..bound`.
#[inline]
fn mul_shift(word: u64, bound: u64) -> u64 {
    ((word as u128 * bound as u128) >> 64) as u64
}

/// Convenience sampling methods, named as in `rand` 0.9.
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from all bits.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_random(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`: deterministic, fast, and good
    /// enough for test-corpus generation. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..=10usize);
            assert!((3..=10).contains(&v));
            let w = rng.random_range(1..=35i32);
            assert!((1..=35).contains(&w));
            let x = rng.random_range(0..6u64);
            assert!(x < 6);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
