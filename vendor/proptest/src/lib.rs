//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies,
//! `prop::collection::vec`, string strategies from (ignored) regex
//! patterns, [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the plain assertion message), and string "regex" strategies ignore
//! the pattern and generate arbitrary printable text (the only pattern the
//! workspace uses is `\PC*`, i.e. arbitrary non-control text). Cases are
//! generated deterministically per test name, so failures reproduce.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Deterministic per test.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates a generator seeded from the test name (stable across runs).
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.random::<u64>()
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value — the
    /// standard way to generate same-length collections or a width
    /// shared by several sets.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        let v = self.inner.generate(rng);
        (self.f)(v).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// String strategy from a "regex" literal. The pattern is ignored except
/// that generated text is printable (no control characters), matching the
/// one pattern the workspace uses (`\PC*`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        let mut s = String::with_capacity(len * 2);
        for _ in 0..len {
            // Mix ASCII (common case for parser inputs) with arbitrary
            // non-control unicode scalars.
            let c = match rng.below(10) {
                0..=6 => char::from(32 + rng.below(95) as u8), // printable ASCII
                7 => char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¿'),
                _ => {
                    let cp = 0x1000 + rng.below(0xFFFF) as u32;
                    match char::from_u32(cp) {
                        Some(c) if !c.is_control() => c,
                        _ => '\u{2603}',
                    }
                }
            };
            s.push(c);
        }
        s
    }
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};

        /// Inclusive bounds on generated collection sizes.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s of `elem` values with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span + 1) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests over strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, Vec<u64>)> {
        (0u32..7, prop::collection::vec(0u64..5, 0..4))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 10u64..=12) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=12).contains(&y));
        }

        #[test]
        fn tuple_pattern_works((a, v) in arb_pair()) {
            prop_assert!(a < 7);
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_applies(s in prop::collection::vec(1usize..4, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&s));
        }

        #[test]
        fn flat_map_threads_dependent_lengths(
            (n, v, w) in (0usize..9).prop_flat_map(|n| (
                Just(n),
                prop::collection::vec(0u64..10, n),
                prop::collection::vec(0u64..10, n),
            ))
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert_eq!(w.len(), n);
        }

        #[test]
        fn string_strategy_is_printable(s in "\\PC*") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
