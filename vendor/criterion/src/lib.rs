//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! The build container has no access to crates.io, so this crate provides
//! the API subset the workspace's benches use: `Criterion` with
//! `sample_size` / `measurement_time` / `warm_up_time`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Beyond printing a human-readable summary, every group writes its
//! measurements to `BENCH_<group>.json` (slashes in the group name become
//! `_`), in the directory named by the `BENCH_JSON_DIR` environment
//! variable (default: current directory). The schema is documented in the
//! repository's `BENCHMARKS.md`. Set `BENCH_QUICK=1` to cut sample counts
//! and measurement time by ~10× for smoke runs.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this implementation always re-runs setup per batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Identifier for a parameterised benchmark, `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured benchmark: timing statistics over the collected samples.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark id within its group.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration.
    pub min_ns: f64,
    /// Maximum nanoseconds per iteration.
    pub max_ns: f64,
    /// Population standard deviation (ns per iteration).
    pub stddev_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0")
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        eprintln!("== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            results: Vec::new(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("default");
        g.bench_function(id.to_string(), f);
        g.finish();
        self
    }

    /// Called by [`criterion_main!`] after all targets ran.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks, flushed to `BENCH_<group>.json` on
/// [`Self::finish`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    results: Vec<Measurement>,
}

impl BenchmarkGroup<'_> {
    /// Measures `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let m = run_bench(self.criterion, &id, |b| f(b));
        eprintln!(
            "{:<50} time: [{} {} {}]",
            format!("{}/{}", self.name, id),
            fmt_ns(m.min_ns),
            fmt_ns(m.median_ns),
            fmt_ns(m.max_ns)
        );
        self.results.push(m);
        self
    }

    /// Measures `f` with an input reference under a parameterised id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Flushes the group's measurements to `BENCH_<group>.json`.
    pub fn finish(self) {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": {:?},", self.name);
        let _ = writeln!(
            json,
            "  \"samples_requested\": {},",
            self.criterion.sample_size
        );
        json.push_str("  \"benches\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"stddev_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}}}",
                m.id,
                m.mean_ns,
                m.median_ns,
                m.min_ns,
                m.max_ns,
                m.stddev_ns,
                m.samples,
                m.iters_per_sample
            );
            json.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]\n}\n");

        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
        let fname = format!(
            "BENCH_{}.json",
            self.name.replace(['/', ' '], "_").replace("__", "_")
        );
        let path = std::path::Path::new(&dir).join(fname);
        let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json));
        if let Err(e) = write {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(c: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) -> Measurement {
    let (sample_size, warm_up, measurement) = if quick() {
        (
            (c.sample_size / 10).max(2),
            c.warm_up_time / 10,
            c.measurement_time / 10,
        )
    } else {
        (c.sample_size, c.warm_up_time, c.measurement_time)
    };

    // Warm-up: run single iterations until the budget is spent, tracking
    // the per-iteration cost to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut bencher);
        warm_iters += 1;
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

    // Size each sample so that all samples fit the measurement budget.
    let budget_ns = measurement.as_nanos() as f64;
    let iters_per_sample = ((budget_ns / sample_size as f64) / per_iter.max(1.0))
        .floor()
        .clamp(1.0, 1e9) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let measure_start = Instant::now();
    for _ in 0..sample_size {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        // Hard stop at 4× the budget so pathological benches terminate.
        if measure_start.elapsed() > measurement * 4 && samples_ns.len() >= 2 {
            break;
        }
    }

    let n = samples_ns.len();
    let mean = samples_ns.iter().sum::<f64>() / n as f64;
    let mut sorted = samples_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    let var = samples_ns
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum::<f64>()
        / n as f64;
    Measurement {
        id: id.to_string(),
        mean_ns: mean,
        median_ns: median,
        min_ns: sorted[0],
        max_ns: sorted[n - 1],
        stddev_ns: var.sqrt(),
        samples: n,
        iters_per_sample,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either the struct form with `name`,
/// `config` and `targets`, or the plain list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_and_writes_json() {
        let dir = std::env::temp_dir().join("criterion_stub_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_JSON_DIR", &dir);
        let mut c = tiny();
        let mut g = c.benchmark_group("stub/selftest");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        let written = std::fs::read_to_string(dir.join("BENCH_stub_selftest.json")).unwrap();
        assert!(written.contains("\"group\": \"stub/selftest\""));
        assert!(written.contains("\"id\": \"noop\""));
        assert!(written.contains("mean_ns"));
        std::env::remove_var("BENCH_JSON_DIR");
    }

    #[test]
    fn benchmark_id_renders_with_parameter() {
        assert_eq!(BenchmarkId::new("detk", 42).to_string(), "detk/42");
    }
}
